// Package eventloop implements the event-dispatch thread (EDT) of an
// event-driven application: a single goroutine draining a FIFO event queue,
// exactly the structure Section II of the paper describes ("execution of an
// event-driven application is achieved by an infinite loop with associated
// event listeners").
//
// The Loop doubles as a virtual-target executor for the core runtime: it is
// the realization of virtual_target_register_edt (Table II). Its distinctive
// capability is *re-entrant pumping* — from inside a handler the EDT can keep
// dispatching further events (PumpUntil), which is how the paper implements
// the await logical barrier on the EDT ("the current experimental version of
// Pyjama achieves this by slightly modifying the event queue dispatching
// mechanism in the Java AWT runtime library").
//
// Dispatch hot path (PR 3): events flow through a pooled chunked ring queue
// (executor.ChunkQueue), event nodes are recycled through a sync.Pool, and
// the producer→EDT wakeup token is sent only when the dispatch goroutine is
// actually parked (the waiters counter), so a loop that is keeping up never
// pays a channel operation per Post.
//
// The EDT deliberately did NOT move to the worker pools' sharded run-queues
// (PR 8). Sharding buys relief from multi-producer contention only when
// multiple consumers drain the shards; the EDT is definitionally a single
// consumer, and splitting its queue would either break FIFO dispatch order
// (handlers observe events out of submission order) or force the drain loop
// to merge shards back into one sequence — paying the coordination the
// single queue avoids. The mutex-guarded ChunkQueue plus parked-only wakeups
// is the right shape for one consumer; the shards live in executor.WorkerPool
// where the consumers are plural.
package eventloop

import (
	"context"
	"errors"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/sanitize"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ErrNotOnEDT is returned by operations that are confined to the loop's own
// goroutine when invoked from elsewhere.
var ErrNotOnEDT = errors.New("eventloop: not on the event-dispatch goroutine")

// ErrOnEDT is returned by InvokeAndWait when called from the EDT itself
// (mirroring Swing, where invokeAndWait from the EDT is an error because it
// would deadlock the queue).
var ErrOnEDT = errors.New("eventloop: InvokeAndWait called on the event-dispatch goroutine")

// DispatchInfo describes one dispatched event, for instrumentation.
type DispatchInfo struct {
	// Label is the label given at Post time ("" for unlabeled events).
	Label string
	// Enqueued is when the event entered the queue (fired).
	Enqueued time.Time
	// Start is when the EDT began running the handler.
	Start time.Time
	// End is when the handler returned.
	End time.Time
	// Err is the handler's captured panic, if any.
	Err error
}

// QueueDelay returns how long the event waited in the queue.
func (d DispatchInfo) QueueDelay() time.Duration { return d.Start.Sub(d.Enqueued) }

// Duration returns how long the handler occupied the EDT.
func (d DispatchInfo) Duration() time.Duration { return d.End.Sub(d.Start) }

type item struct {
	fn       func()
	complete func(error)
	enqueued time.Time
	label    string
	// span/spawn carry causal tracing across the post boundary (see
	// executor.task): span is the event's pre-allocated run-span id and
	// spawn the poster's current span. Zero when tracing was off at post.
	span  trace.SpanID
	spawn trace.SpanID
}

// Loop is a single-goroutine event dispatcher. Create with New, then Start.
type Loop struct {
	name     string
	registry *gid.Registry
	// san stamps the dispatch goroutine as this loop's home context
	// (bound in run); every dispatched event asserts affinity against it
	// under -tags=ompsan, cross-validating the gid.Registry ownership the
	// rest of the runtime relies on. No-op in untagged builds.
	san sanitize.Home

	// clock is the loop's time source: DispatchInfo timestamps and
	// PostDelayed timers go through it. Defaults to the wall clock; tests
	// and the simulation harness inject a controlled clock with SetClock
	// before Start.
	clock vclock.Clock

	mu      sync.Mutex
	q       executor.ChunkQueue[*item]
	closed  bool
	delayed map[vclock.Timer]func(error) // pending PostDelayed timers -> their completions

	// Hot-path state read without the lock.
	qlen     atomic.Int64 // mirror of q.Len(), updated under mu
	waiters  atomic.Int32 // dispatch goroutine parked on notify (0 or 1)
	itemPool sync.Pool    // *item nodes

	notify chan struct{} // cap-1 wakeup
	stopCh chan struct{}
	ready  chan struct{}
	wg     sync.WaitGroup

	observer    atomic.Pointer[func(DispatchInfo)]
	onPanic     atomic.Pointer[func(any)]
	onCrash     atomic.Pointer[func(any)]
	interceptor atomic.Pointer[Interceptor]
	crashed     atomic.Bool
	dispatched  atomic.Int64
	peak        atomic.Int64
	depth       atomic.Int32 // dispatch nesting depth (1 = top level, >1 = pumping)
}

// Interceptor wraps every handler just before it is dispatched — a seam for
// fault injection (package chaos) and instrumentation. The wrapper runs on
// the dispatch goroutine in the handler's place.
type Interceptor func(label string, fn func()) func()

// New creates a Loop named name whose dispatch goroutine registers itself in
// reg (nil means gid.Default). The loop is not running until Start.
func New(name string, reg *gid.Registry) *Loop {
	if reg == nil {
		reg = &gid.Default
	}
	l := &Loop{
		name:     name,
		registry: reg,
		clock:    vclock.Wall,
		q:        executor.NewChunkQueue[*item](),
		delayed:  make(map[vclock.Timer]func(error)),
		notify:   make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
	l.itemPool.New = func() any { return new(item) }
	return l
}

// SetClock replaces the loop's time source (nil restores the wall clock).
// Must be called before Start: the dispatch goroutine reads the clock
// without synchronization.
func (l *Loop) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Wall
	}
	l.mu.Lock()
	l.clock = c
	l.mu.Unlock()
}

// Start launches the event-dispatch goroutine and returns once it is
// registered (so Owns answers correctly immediately after Start).
func (l *Loop) Start() {
	l.wg.Add(1)
	go l.run()
	<-l.ready
}

func (l *Loop) run() {
	normal := false
	defer func() {
		v := recover()
		l.san.Unbind()
		l.registry.Deregister()
		if !normal || v != nil {
			// The dispatch goroutine died abnormally (runtime.Goexit in a
			// handler, or a panic that escaped recovery): the loop is dead
			// and its queue will never drain again. Record it so watchdogs
			// and supervisors can tell a crashed EDT from an idle one.
			l.loopCrashed(v)
		}
		l.wg.Done()
	}()
	l.registry.Register(l)
	l.san.Bind("eventloop", l.name)
	close(l.ready)
	// Label the dispatch goroutine with the loop's target name so CPU
	// profiles attribute EDT samples per target (go tool pprof -tags).
	pprof.Do(context.Background(), pprof.Labels("target", l.name), func(context.Context) {
		l.runLoop()
	})
	normal = true
}

func (l *Loop) runLoop() {
	for {
		it, ok := l.next()
		if !ok {
			// Stop requested: drain whatever is already queued, then exit.
			for l.runOne() {
			}
			return
		}
		l.dispatch(it)
		l.releaseItem(it)
	}
}

// loopCrashed marks the loop dead and notifies the crash handler.
func (l *Loop) loopCrashed(reason any) {
	l.crashed.Store(true)
	if h := l.onCrash.Load(); h != nil {
		(*h)(reason)
	}
}

// Crashed reports whether the dispatch goroutine died abnormally. A crashed
// loop never dispatches again; Stop will fail its remaining queue.
func (l *Loop) Crashed() bool { return l.crashed.Load() }

// SetCrashHandler installs fn to be called if the dispatch goroutine dies
// abnormally, with the escaped panic value (nil for a plain Goexit).
func (l *Loop) SetCrashHandler(fn func(any)) {
	if fn == nil {
		l.onCrash.Store(nil)
		return
	}
	l.onCrash.Store(&fn)
}

// SetInterceptor installs a dispatch interceptor (nil removes it). See
// Interceptor.
func (l *Loop) SetInterceptor(ic Interceptor) {
	if ic == nil {
		l.interceptor.Store(nil)
		return
	}
	l.interceptor.Store(&ic)
}

// FailPending removes every queued-but-undispatched event and completes it
// with err, returning how many were failed. Used when the loop has crashed
// and the queue can never drain.
func (l *Loop) FailPending(err error) int {
	l.mu.Lock()
	items := l.q.Drain(nil)
	l.qlen.Store(0)
	l.mu.Unlock()
	for _, it := range items {
		it.complete(err)
		l.releaseItem(it)
	}
	return len(items)
}

// releaseItem returns a dispatched (or failed) event node to the pool.
func (l *Loop) releaseItem(it *item) {
	*it = item{}
	l.itemPool.Put(it)
}

// popItem removes the oldest queued event under the lock, nil if none.
func (l *Loop) popItem() *item {
	l.mu.Lock()
	it, ok := l.q.Pop()
	if !ok {
		l.mu.Unlock()
		return nil
	}
	l.qlen.Store(int64(l.q.Len()))
	l.mu.Unlock()
	return it
}

// next blocks until an event is available (returning it) or stop is
// requested with an empty queue (returning false). The park protocol
// mirrors the worker pool's: announce intent via the waiters counter,
// re-check the (atomic) queue length, then sleep — PostLabeled publishes
// the length before reading the counter, so a wakeup is never lost.
func (l *Loop) next() (*item, bool) {
	for {
		if it := l.popItem(); it != nil {
			return it, true
		}
		l.waiters.Add(1)
		if l.qlen.Load() > 0 {
			l.waiters.Add(-1)
			continue
		}
		select {
		case <-l.notify:
			l.waiters.Add(-1)
		case <-l.stopCh:
			l.waiters.Add(-1)
			return nil, false
		}
	}
}

func (l *Loop) dispatch(it *item) {
	l.san.Check("dispatch event on " + l.name)
	start := l.clock.Now()
	fn := it.fn
	if ic := l.interceptor.Load(); ic != nil {
		fn = (*ic)(it.label, fn)
	}
	complete, label, enqueued := it.complete, it.label, it.enqueued
	finished := false
	defer func() {
		if !finished {
			// The dispatching goroutine is unwinding mid-handler: fail the
			// event so waiters don't hang on a dead loop.
			complete(executor.ErrWorkerCrashed)
		}
	}()
	if span := it.span; span != 0 {
		if sink := trace.ActiveSink(); sink != nil {
			prev := trace.Swap(span)
			parent := it.spawn
			if parent == 0 {
				// Untraced poster: attribute the run to whatever span the
				// dispatching goroutine is inside (re-entrant pumping makes
				// nested dispatches children of the awaiting handler).
				parent = prev
			}
			trace.BeginSpanID(sink, span, "run", l.name, parent)
			defer func() {
				trace.Swap(prev)
				trace.EndSpan(sink, span, "run", l.name)
			}()
		}
	}
	l.depth.Add(1)
	err := executor.RunCaptured(fn)
	l.depth.Add(-1)
	finished = true
	end := l.clock.Now()
	if err != nil {
		var pe *executor.PanicError
		if errors.As(err, &pe) {
			if h := l.onPanic.Load(); h != nil {
				(*h)(pe.Value)
			}
		}
	}
	complete(err)
	l.dispatched.Add(1)
	if obs := l.observer.Load(); obs != nil {
		(*obs)(DispatchInfo{Label: label, Enqueued: enqueued, Start: start, End: end, Err: err})
	}
}

// runOne pops and dispatches a single queued event, reporting whether one
// was found. Must run on the dispatch goroutine.
func (l *Loop) runOne() bool {
	it := l.popItem()
	if it == nil {
		return false
	}
	l.dispatch(it)
	l.releaseItem(it)
	return true
}

// Name returns the loop's virtual-target name.
func (l *Loop) Name() string { return l.name }

// Post enqueues fn as an event. Safe from any goroutine.
func (l *Loop) Post(fn func()) *executor.Completion { return l.PostLabeled("", fn) }

// PostLabeled enqueues fn with a label used in DispatchInfo instrumentation.
func (l *Loop) PostLabeled(label string, fn func()) *executor.Completion {
	comp, complete := executor.NewPendingCompletion()
	var spawn trace.SpanID
	if trace.ActiveSink() != nil {
		spawn = trace.Current()
	}
	l.postItem(label, fn, complete, spawn)
	return comp
}

// postItem is the shared enqueue path of PostLabeled and fired PostDelayed
// timers: push a pooled node, publish length and peak off the lock, and
// wake the dispatch goroutine only if it is parked. spawn is the poster's
// span at the original call site — PostDelayed captures it before the timer
// fires, since the timer goroutine itself carries no span.
func (l *Loop) postItem(label string, fn func(), complete func(error), spawn trace.SpanID) {
	it := l.itemPool.Get().(*item)
	it.fn, it.complete, it.enqueued, it.label = fn, complete, l.clock.Now(), label
	it.span, it.spawn = 0, 0
	if sink := trace.ActiveSink(); sink != nil {
		it.span = trace.NewSpanID()
		it.spawn = spawn
		trace.Enqueue(sink, it.span, l.name, spawn)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.releaseItem(it)
		complete(executor.ErrShutdown)
		return
	}
	n := int64(l.q.Push(it))
	l.qlen.Store(n)
	l.mu.Unlock()
	executor.CasMax(&l.peak, n)
	if l.waiters.Load() > 0 {
		select {
		case l.notify <- struct{}{}:
		default:
		}
	}
}

// PostDelayed enqueues fn after delay d (like javax.swing.Timer one-shots).
// The returned Completion finishes when the handler has run — or with
// executor.ErrShutdown if the loop stops first: the timer is cancelled by
// Stop instead of leaking past it, and no forwarding goroutine is burned
// waiting for the handler.
func (l *Loop) PostDelayed(d time.Duration, fn func()) *executor.Completion {
	comp, complete := executor.NewPendingCompletion()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		complete(executor.ErrShutdown)
		return comp
	}
	var spawn trace.SpanID
	if trace.ActiveSink() != nil {
		spawn = trace.Current()
	}
	if d <= 0 {
		// Already due: enqueue directly. Also keeps injected clocks whose
		// AfterFunc runs non-positive delays synchronously (vclock.Manual)
		// from re-entering l.mu, which this method holds.
		l.mu.Unlock()
		l.postItem("", fn, complete, spawn)
		return comp
	}
	var tm vclock.Timer
	tm = l.clock.AfterFunc(d, func() {
		l.mu.Lock()
		delete(l.delayed, tm)
		l.mu.Unlock()
		// postItem rejects with ErrShutdown if Stop won the race, so the
		// completion always finishes exactly once: Stop only completes
		// timers it successfully cancelled (tm.Stop() == true), and a
		// cancelled timer never runs this callback.
		l.postItem("", fn, complete, spawn)
	})
	l.delayed[tm] = complete
	l.mu.Unlock()
	return comp
}

// InvokeAndWait posts fn and blocks until it has been dispatched, returning
// the handler's error. Calling it from the EDT returns ErrOnEDT (Swing
// semantics: it would deadlock the queue).
func (l *Loop) InvokeAndWait(fn func()) error {
	if l.Owns() {
		return ErrOnEDT
	}
	return l.Post(fn).Wait()
}

// Owns reports whether the calling goroutine is the dispatch goroutine.
func (l *Loop) Owns() bool { return l.registry.IsOwnedBy(l) }

// SanCheck asserts (under -tags=ompsan) that the calling goroutine is the
// dispatch goroutine, panicking with both stacks on violation. Confined
// consumers of the loop (the gui toolkit's widgets, core's inline-invoke
// decision) call it at their mutation points; it is a no-op untagged.
func (l *Loop) SanCheck(op string) { l.san.Check(op) }

// SanViolate reports a confinement violation an independent mechanism
// already detected (under -tags=ompsan), panicking with both the violating
// stack and the stack that bound the dispatch goroutine. No-op untagged —
// gate on sanitize.Enabled and keep a plain panic as the untagged path.
func (l *Loop) SanViolate(op string) { l.san.Violate(op) }

// TryRunPending dispatches one queued event on the calling goroutine if one
// is pending. It refuses to run events off the dispatch goroutine — thread
// confinement is the whole point of an EDT — so from any other goroutine it
// reports false without touching the queue. The empty case is answered from
// the atomic length without taking the lock.
func (l *Loop) TryRunPending() bool {
	if !l.Owns() {
		return false
	}
	if l.qlen.Load() == 0 {
		return false
	}
	return l.runOne()
}

// WaitPending blocks until an event is queued or cancel fires, reporting
// whether pending work may be available (see executor.WorkerPool.WaitPending
// for the contract). Only the dispatch goroutine itself ever waits here (it
// is the only goroutine the registry affiliates with the loop), so it shares
// the waiters counter with next.
func (l *Loop) WaitPending(cancel <-chan struct{}) bool {
	if l.qlen.Load() > 0 {
		return true
	}
	l.waiters.Add(1)
	defer l.waiters.Add(-1)
	if l.qlen.Load() > 0 {
		return true
	}
	select {
	case <-l.notify:
		return true
	case <-cancel:
		return false
	}
}

// PumpUntil keeps dispatching queued events until done fires. It must be
// called from within a handler on the dispatch goroutine (this is the
// re-entrant "modified event queue dispatching" of Section IV.B); from any
// other goroutine it returns ErrNotOnEDT immediately.
func (l *Loop) PumpUntil(done <-chan struct{}) error {
	if !l.Owns() {
		return ErrNotOnEDT
	}
	for {
		select {
		case <-done:
			return nil
		default:
		}
		if l.runOne() {
			continue
		}
		l.waiters.Add(1)
		if l.qlen.Load() > 0 {
			l.waiters.Add(-1)
			continue
		}
		select {
		case <-done:
			l.waiters.Add(-1)
			return nil
		case <-l.notify:
			l.waiters.Add(-1)
		case <-l.stopCh:
			l.waiters.Add(-1)
			return executor.ErrShutdown
		}
	}
}

// Depth returns the current dispatch nesting depth on the EDT: 0 when idle,
// 1 inside a normal handler, >1 while pumping inside an awaited block.
func (l *Loop) Depth() int { return int(l.depth.Load()) }

// Len returns the number of queued (not yet dispatched) events.
func (l *Loop) Len() int { return int(l.qlen.Load()) }

// Dispatched returns the total number of events dispatched so far.
func (l *Loop) Dispatched() int64 { return l.dispatched.Load() }

// QueuePeak returns the high watermark of the queue length.
func (l *Loop) QueuePeak() int64 { return l.peak.Load() }

// SetObserver installs fn to be called after every dispatched event.
func (l *Loop) SetObserver(fn func(DispatchInfo)) {
	if fn == nil {
		l.observer.Store(nil)
		return
	}
	l.observer.Store(&fn)
}

// SetPanicHandler installs fn to be called with recovered handler panics.
func (l *Loop) SetPanicHandler(fn func(any)) {
	if fn == nil {
		l.onPanic.Store(nil)
		return
	}
	l.onPanic.Store(&fn)
}

// Stop rejects further posts, cancels pending PostDelayed timers (their
// completions finish with executor.ErrShutdown), lets the loop drain
// already-queued events, and joins the dispatch goroutine. If the loop
// crashed, the undrainable remainder of the queue is failed with
// ErrWorkerCrashed. Safe to call more than once.
func (l *Loop) Stop() {
	l.mu.Lock()
	var orphaned []func(error)
	if !l.closed {
		l.closed = true
		for tm, complete := range l.delayed {
			if tm.Stop() {
				// The callback will never run; we own the completion.
				orphaned = append(orphaned, complete)
			}
			// Otherwise the callback is already firing: it will block on
			// mu, see closed==true, and finish the completion itself via
			// postItem's ErrShutdown rejection.
			delete(l.delayed, tm)
		}
		close(l.stopCh)
	}
	l.mu.Unlock()
	for _, complete := range orphaned {
		complete(executor.ErrShutdown)
	}
	l.wg.Wait()
	if l.crashed.Load() {
		l.FailPending(executor.ErrWorkerCrashed)
	}
}

// Shutdown implements executor.Executor; it is Stop.
func (l *Loop) Shutdown() { l.Stop() }

var _ executor.Executor = (*Loop)(nil)
