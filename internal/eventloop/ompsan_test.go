//go:build ompsan

package eventloop

import (
	"testing"

	"repro/internal/gid"
	"repro/internal/sanitize"
)

// Proves the sanitizer is measurably exercised by a real event loop: every
// dispatched event runs an affinity assertion against the loop's home
// stamp, so the process-wide check counter must advance.
func TestDispatchExercisesSanitizer(t *testing.T) {
	var reg gid.Registry
	l := New("san-edt", &reg)
	l.Start()
	defer l.Stop()

	before := sanitize.Checks()
	for i := 0; i < 10; i++ {
		if err := l.InvokeAndWait(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sanitize.Checks() - before; got < 10 {
		t.Fatalf("sanitizer ran %d checks across 10 dispatches, want >= 10", got)
	}
}

// A dispatch-goroutine operation invoked from a foreign goroutine must
// panic with both stacks. SanViolate is the hook the gui toolkit uses when
// its own policy check has already detected the violation.
func TestSanViolateCarriesBothStacks(t *testing.T) {
	var reg gid.Registry
	l := New("san-edt", &reg)
	l.Start()
	defer l.Stop()
	// Wait for the loop goroutine to bind its home stamp.
	if err := l.InvokeAndWait(func() {}); err != nil {
		t.Fatal(err)
	}

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("SanViolate did not panic")
		}
		msg := v.(string)
		for _, want := range []string{"ompsan:", "-- violating goroutine stack --", "-- home context bound at --"} {
			if !contains(msg, want) {
				t.Fatalf("panic missing %q:\n%s", want, msg)
			}
		}
	}()
	l.SanViolate("test violation")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
