package eventloop

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/vclock"

	"repro/internal/testutil/leakcheck"

	"repro/internal/testutil/poll"
)

func newLoop(t *testing.T) *Loop {
	t.Helper()
	var reg gid.Registry
	l := New("edt", &reg)
	l.Start()
	t.Cleanup(l.Stop)
	return l
}

func TestDispatchOrderFIFO(t *testing.T) {
	l := newLoop(t)
	var mu sync.Mutex
	var order []int
	var comps []*executor.Completion
	for i := 0; i < 100; i++ {
		i := i
		comps = append(comps, l.Post(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}))
	}
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events dispatched out of order: order[%d]=%d", i, v)
		}
	}
	if got := l.Dispatched(); got != 100 {
		t.Fatalf("Dispatched = %d", got)
	}
}

func TestOwnsAndConfinement(t *testing.T) {
	l := newLoop(t)
	if l.Owns() {
		t.Fatal("external goroutine must not own the loop")
	}
	c := l.Post(func() {
		if !l.Owns() {
			t.Error("handler must run on the dispatch goroutine")
		}
		if l.Depth() != 1 {
			t.Errorf("Depth = %d inside handler, want 1", l.Depth())
		}
	})
	c.Wait()
	if l.Depth() != 0 {
		t.Fatalf("Depth = %d when idle", l.Depth())
	}
}

func TestTryRunPendingRefusedOffEDT(t *testing.T) {
	l := newLoop(t)
	// Block the EDT so an event stays queued.
	block := make(chan struct{})
	started := make(chan struct{})
	l.Post(func() { close(started); <-block })
	<-started
	l.Post(func() {})
	if l.TryRunPending() {
		t.Fatal("TryRunPending ran an event off the EDT — confinement broken")
	}
	close(block)
}

func TestPumpUntilDispatchesNestedEvents(t *testing.T) {
	// The crux of the await mode: while a handler waits, the EDT keeps
	// dispatching other events (Figure 1(ii) behaviour).
	l := newLoop(t)
	var got []string
	var mu sync.Mutex
	log := func(s string) { mu.Lock(); got = append(got, s); mu.Unlock() }

	done := make(chan struct{})
	outer := l.Post(func() {
		log("outer-start")
		if err := l.PumpUntil(done); err != nil {
			t.Errorf("PumpUntil: %v", err)
		}
		log("outer-end")
	})
	// These events arrive while the outer handler is "awaiting"; they must
	// be dispatched before outer-end.
	c1 := l.Post(func() { log("inner-1") })
	c2 := l.Post(func() { log("inner-2") })
	c1.Wait()
	c2.Wait()
	close(done)
	outer.Wait()

	want := []string{"outer-start", "inner-1", "inner-2", "outer-end"}
	if len(got) != len(want) {
		t.Fatalf("log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log = %v, want %v", got, want)
		}
	}
}

func TestPumpUntilOffEDT(t *testing.T) {
	l := newLoop(t)
	done := make(chan struct{})
	close(done)
	if err := l.PumpUntil(done); !errors.Is(err, ErrNotOnEDT) {
		t.Fatalf("PumpUntil off EDT = %v, want ErrNotOnEDT", err)
	}
}

func TestPumpDepth(t *testing.T) {
	l := newLoop(t)
	depths := make(chan int, 2)
	done := make(chan struct{})
	outer := l.Post(func() {
		l.PumpUntil(done)
	})
	inner := l.Post(func() {
		depths <- l.Depth()
		close(done)
	})
	inner.Wait()
	outer.Wait()
	if d := <-depths; d != 2 {
		t.Fatalf("nested dispatch depth = %d, want 2", d)
	}
}

func TestInvokeAndWait(t *testing.T) {
	l := newLoop(t)
	ran := false
	if err := l.InvokeAndWait(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("InvokeAndWait did not run the function")
	}
	// From the EDT it must refuse (Swing semantics).
	var inner error
	l.InvokeAndWait(func() { inner = l.InvokeAndWait(func() {}) })
	if !errors.Is(inner, ErrOnEDT) {
		t.Fatalf("InvokeAndWait on EDT = %v, want ErrOnEDT", inner)
	}
}

func TestPanicIsolatedAndReported(t *testing.T) {
	l := newLoop(t)
	var recovered atomic.Value
	l.SetPanicHandler(func(v any) { recovered.Store(v) })
	c := l.Post(func() { panic("handler bug") })
	err := c.Wait()
	var pe *executor.PanicError
	if !errors.As(err, &pe) || pe.Value != "handler bug" {
		t.Fatalf("err = %v", err)
	}
	if recovered.Load() != "handler bug" {
		t.Fatalf("panic handler saw %v", recovered.Load())
	}
	// Loop must still be alive.
	if err := l.Post(func() {}).Wait(); err != nil {
		t.Fatalf("loop dead after handler panic: %v", err)
	}
}

func TestObserver(t *testing.T) {
	l := newLoop(t)
	infos := make(chan DispatchInfo, 1)
	l.SetObserver(func(d DispatchInfo) {
		select {
		case infos <- d:
		default:
		}
	})
	l.PostLabeled("click", func() { time.Sleep(2 * time.Millisecond) }).Wait()
	d := <-infos
	if d.Label != "click" {
		t.Fatalf("label = %q", d.Label)
	}
	if d.Duration() < 2*time.Millisecond {
		t.Fatalf("Duration = %v, want >= 2ms", d.Duration())
	}
	if d.QueueDelay() < 0 {
		t.Fatalf("QueueDelay = %v", d.QueueDelay())
	}
}

func TestStopDrainsQueuedEvents(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	l := New("edt", &reg)
	l.Start()
	var n atomic.Int64
	var comps []*executor.Completion
	for i := 0; i < 50; i++ {
		comps = append(comps, l.Post(func() { n.Add(1) }))
	}
	l.Stop()
	if got := n.Load(); got != 50 {
		t.Fatalf("Stop drained %d/50 events", got)
	}
	for _, c := range comps {
		if !c.Finished() {
			t.Fatal("event not finished after Stop")
		}
	}
	if err := l.Post(func() {}).Wait(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("post after Stop: %v, want ErrShutdown", err)
	}
	l.Stop() // idempotent
}

func TestPostDelayed(t *testing.T) {
	l := newLoop(t)
	start := time.Now()
	c := l.PostDelayed(10*time.Millisecond, func() {})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delayed post ran after %v, want >= 10ms", d)
	}
}

func TestWaitPending(t *testing.T) {
	l := newLoop(t)
	// Pending already: returns true immediately.
	block := make(chan struct{})
	started := make(chan struct{})
	l.Post(func() { close(started); <-block })
	<-started
	l.Post(func() {})
	cancel := make(chan struct{})
	if !l.WaitPending(cancel) {
		t.Fatal("WaitPending = false with a queued event")
	}
	close(block)
	// Empty queue + cancel: returns false.
	l.Post(func() {}).Wait()
	// drain any stale notify token first
	done := make(chan bool, 1)
	c2 := make(chan struct{})
	go func() { done <- l.WaitPending(c2) }()
	poll.UntilBlockedIn(t, "(*Loop).WaitPending")
	close(c2)
	select {
	case v := <-done:
		_ = v // may be true from a stale token; both are acceptable hints
	case <-time.After(time.Second):
		t.Fatal("WaitPending did not return after cancel")
	}
}

func TestQueuePeak(t *testing.T) {
	l := newLoop(t)
	block := make(chan struct{})
	started := make(chan struct{})
	l.Post(func() { close(started); <-block })
	<-started
	var comps []*executor.Completion
	for i := 0; i < 10; i++ {
		comps = append(comps, l.Post(func() {}))
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	close(block)
	for _, c := range comps {
		c.Wait()
	}
	if l.QueuePeak() < 10 {
		t.Fatalf("QueuePeak = %d, want >= 10", l.QueuePeak())
	}
}

func BenchmarkPostDispatch(b *testing.B) {
	var reg gid.Registry
	l := New("edt", &reg)
	l.Start()
	defer l.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Post(func() {}).Wait()
	}
}

// TestPostDelayedCancelledOnStop is the regression test for the leaked-timer
// bug: PostDelayed used to arm a bare time.AfterFunc that outlived Stop, so
// the callback fired into a dead loop and the returned Completion never
// finished — a Wait on it hung forever. Stop must now cancel pending timers
// and fail their completions with ErrShutdown.
func TestPostDelayedCancelledOnStop(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := &gid.Registry{}
	l := New("edt", reg)
	l.Start()
	var ran atomic.Bool
	c := l.PostDelayed(time.Hour, func() { ran.Store(true) })
	l.Stop()
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, executor.ErrShutdown) {
			t.Fatalf("Wait() = %v, want ErrShutdown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("completion never finished: delayed timer leaked past Stop")
	}
	if ran.Load() {
		t.Fatal("delayed fn ran despite Stop before the delay elapsed")
	}
}

// TestPostDelayedNoGoroutinePerPost is the regression test for the
// goroutine-per-post cost: the old implementation parked one forwarding
// goroutine for every pending delayed post. Arming many long delays must
// not grow the goroutine count linearly.
func TestPostDelayedNoGoroutinePerPost(t *testing.T) {
	reg := &gid.Registry{}
	l := New("edt", reg)
	l.Start()
	defer l.Stop()
	before := runtime.NumGoroutine()
	const n = 200
	for i := 0; i < n; i++ {
		l.PostDelayed(time.Hour, func() {})
	}
	// time.AfterFunc timers live in the runtime timer heap, not as parked
	// goroutines; allow a little scheduler noise but nothing near n.
	if after := runtime.NumGoroutine(); after-before > n/4 {
		t.Fatalf("goroutines grew %d -> %d after %d delayed posts (goroutine per post)",
			before, after, n)
	}
}

// TestPostDelayedStopRace hammers the Stop-vs-fire race: every completion
// must finish exactly once, either nil (fired) or ErrShutdown (cancelled or
// rejected by the closed loop), never hang.
func TestPostDelayedStopRace(t *testing.T) {
	defer leakcheck.Check(t)()
	for round := 0; round < 20; round++ {
		reg := &gid.Registry{}
		l := New("edt", reg)
		l.Start()
		comps := make([]*executor.Completion, 30)
		for i := range comps {
			comps[i] = l.PostDelayed(time.Duration(i)*100*time.Microsecond, func() {})
		}
		time.Sleep(time.Millisecond)
		l.Stop()
		for i, c := range comps {
			done := make(chan error, 1)
			go func() { done <- c.Wait() }()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, executor.ErrShutdown) {
					t.Fatalf("round %d comp %d: err = %v", round, i, err)
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("round %d comp %d: completion never finished", round, i)
			}
		}
	}
}

// TestPostDelayedOnInjectedClock drives the loop's timers from a manual
// clock through the SetClock seam: nothing fires while only wall time
// passes, everything due fires — in deadline order — when the clock is
// advanced. This is the seam the simulation executor relies on.
func TestPostDelayedOnInjectedClock(t *testing.T) {
	reg := &gid.Registry{}
	l := New("edt", reg)
	mc := vclock.NewManual(time.Time{})
	l.SetClock(mc)
	l.Start()
	defer l.Stop()

	var mu sync.Mutex
	var order []string
	say := func(s string) func() {
		return func() { mu.Lock(); order = append(order, s); mu.Unlock() }
	}
	late := l.PostDelayed(20*time.Millisecond, say("late"))
	early := l.PostDelayed(5*time.Millisecond, say("early"))
	// Immediate (non-positive) delays bypass the clock entirely.
	if err := l.PostDelayed(0, say("now")).Wait(); err != nil {
		t.Fatal(err)
	}
	if early.Finished() || late.Finished() {
		t.Fatal("delayed post fired without the manual clock advancing")
	}
	mc.Advance(30 * time.Millisecond)
	if err := late.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := early.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got := strings.Join(order, ","); got != "now,early,late" {
		t.Fatalf("fire order = %q, want now,early,late", got)
	}
}
