package eventloop

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"

	"repro/internal/testutil/poll"
)

func TestPostDelayedAfterStop(t *testing.T) {
	var reg gid.Registry
	l := New("edt", &reg)
	l.Start()
	l.Stop()
	c := l.PostDelayed(time.Millisecond, func() {})
	if err := c.Wait(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("err = %v, want ErrShutdown", err)
	}
}

func TestSetObserverNilClears(t *testing.T) {
	l := newLoop(t)
	var n atomic.Int64
	l.SetObserver(func(DispatchInfo) { n.Add(1) })
	l.Post(func() {}).Wait()
	if n.Load() == 0 {
		t.Fatal("observer not called")
	}
	l.SetObserver(nil)
	before := n.Load()
	l.Post(func() {}).Wait()
	if n.Load() != before {
		t.Fatal("cleared observer still called")
	}
	l.SetPanicHandler(nil) // must not crash on next panic either
	l.Post(func() { panic("x") }).Wait()
	l.Post(func() {}).Wait()
}

func TestConcurrentPosters(t *testing.T) {
	l := newLoop(t)
	var ran atomic.Int64
	var wg sync.WaitGroup
	const posters, per = 16, 50
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Post(func() { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	// Flush: one more event after all posts.
	l.Post(func() {}).Wait()
	poll.Until(t, "every posted event to run", func() bool { return ran.Load() == posters*per })
}

func TestPumpUntilAlreadyDone(t *testing.T) {
	l := newLoop(t)
	done := make(chan struct{})
	close(done)
	err := l.InvokeAndWait(func() {
		if perr := l.PumpUntil(done); perr != nil {
			t.Errorf("PumpUntil: %v", perr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNameAndShutdownAlias(t *testing.T) {
	var reg gid.Registry
	l := New("my-edt", &reg)
	l.Start()
	if l.Name() != "my-edt" {
		t.Fatal("name")
	}
	l.Shutdown() // alias for Stop
	if err := l.Post(func() {}).Wait(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatal("Shutdown did not stop the loop")
	}
}
