package eventloop

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"
)

func TestEDTCrashFailsEventAndMarksLoop(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	l := New("edt", &reg)
	l.Start()
	crashed := make(chan any, 1)
	l.SetCrashHandler(func(v any) { crashed <- v })

	c := l.Post(func() { runtime.Goexit() })
	if err := c.Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed", err)
	}
	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("crash handler not called")
	}
	if !l.Crashed() {
		t.Fatal("Crashed() = false after EDT death")
	}

	// Events queued behind the crash can never dispatch; Stop fails them.
	stranded := l.Post(func() { t.Error("handler ran on dead loop") })
	l.Stop()
	if err := stranded.Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
		t.Fatalf("stranded err = %v, want ErrWorkerCrashed", err)
	}
}

func TestInterceptorWrapsDispatch(t *testing.T) {
	var reg gid.Registry
	l := New("edt", &reg)
	var order []string
	l.SetInterceptor(func(label string, fn func()) func() {
		return func() {
			order = append(order, "before:"+label)
			fn()
			order = append(order, "after:"+label)
		}
	})
	l.Start()
	defer l.Stop()
	if err := l.PostLabeled("evt", func() { order = append(order, "body") }).Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"before:evt", "body", "after:evt"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFailPendingCompletesQueued(t *testing.T) {
	var reg gid.Registry
	l := New("edt", &reg)
	// Not started: everything posted stays queued.
	c1 := l.Post(func() {})
	c2 := l.Post(func() {})
	bang := errors.New("bang")
	if n := l.FailPending(bang); n != 2 {
		t.Fatalf("FailPending = %d, want 2", n)
	}
	if err := c1.Wait(); !errors.Is(err, bang) {
		t.Fatalf("c1 err = %v", err)
	}
	if err := c2.Wait(); !errors.Is(err, bang) {
		t.Fatalf("c2 err = %v", err)
	}
}
