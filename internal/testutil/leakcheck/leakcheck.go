// Package leakcheck detects goroutines leaked by a test. The runtime under
// test is all long-lived goroutines — worker pools, event loops, network
// dispatchers, supervisors — so the single most common lifecycle bug is a
// Stop/Shutdown path that strands one. The checker is a snapshot diff over
// runtime.Stack: record the live goroutines when the test starts, and at
// test end require every goroutine not in that snapshot (and not on the
// allowlist of runtime/testing infrastructure) to exit within a grace
// period. Two entry points:
//
//	func TestSomething(t *testing.T) {
//		defer leakcheck.Check(t)()   // per-test diff
//		...
//	}
//
//	func TestMain(m *testing.M) {
//		os.Exit(leakcheck.Main(m))   // whole-package sweep after the last test
//	}
//
// The retry loop makes the check deterministic in the presence of benign
// in-flight teardown (a worker observing its stop flag, a timer firing):
// a goroutine only counts as leaked if it is still running after the full
// grace period, not if it merely hasn't been scheduled yet.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// gracePeriod is how long a goroutine that appeared during the test may
// take to exit after the test body returns before it is declared leaked.
// A variable so the package's own tests can shorten it.
var gracePeriod = 5 * time.Second

// allowlist matches goroutines that are infrastructure, not ours: anything
// whose stack contains one of these substrings is never reported. The
// entries are deliberately narrow — "created by" lines and fully qualified
// functions — so a leak in repro code cannot hide behind them.
var allowlist = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runTests(",
	"testing.runFuzzing(",
	"testing.(*F).Fuzz(",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.goexit",
	"runtime/trace.Start",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"net/http.(*Server).Serve", // the test's own server, torn down by its defer after ours runs
	"leakcheck.stacks",         // our own snapshot machinery
}

// goroutineDump is one goroutine's entry in a runtime.Stack dump.
type goroutineDump struct {
	id    int64
	stack string // full block including the "goroutine N [state]:" header
}

// stacks captures and parses the all-goroutine stack dump.
func stacks() []goroutineDump {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutineDump
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		id, ok := parseHeader(block)
		if !ok {
			continue
		}
		out = append(out, goroutineDump{id: id, stack: block})
	}
	return out
}

// parseHeader extracts N from a "goroutine N [state]:" header line.
func parseHeader(block string) (int64, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(block, prefix) {
		return 0, false
	}
	rest := block[len(prefix):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:sp], 10, 64)
	return id, err == nil
}

func allowed(stack string) bool {
	for _, pat := range allowlist {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// leaked returns the goroutines live now that are neither in the baseline
// snapshot nor allowlisted.
func leaked(baseline map[int64]bool) []goroutineDump {
	var out []goroutineDump
	for _, g := range stacks() {
		if baseline[g.id] || allowed(g.stack) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// settle polls until no new non-allowlisted goroutines remain or the grace
// period expires, and returns the survivors.
func settle(baseline map[int64]bool) []goroutineDump {
	deadline := time.Now().Add(gracePeriod)
	wait := 500 * time.Microsecond
	for {
		left := leaked(baseline)
		if len(left) == 0 || time.Now().After(deadline) {
			return left
		}
		time.Sleep(wait)
		if wait < 50*time.Millisecond {
			wait *= 2
		}
	}
}

func report(leaks []goroutineDump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "leakcheck: %d goroutine(s) leaked after %v grace:\n", len(leaks), gracePeriod)
	for _, g := range leaks {
		b.WriteString("\n")
		b.WriteString(g.stack)
		b.WriteString("\n")
	}
	return b.String()
}

// Check snapshots the live goroutines and returns the verifier to defer:
//
//	defer leakcheck.Check(t)()
//
// The verifier fails t if any goroutine created during the test outlives
// the grace period. Not meaningful under t.Parallel (a sibling test's
// legitimate goroutines would be blamed on this one); none of this repo's
// runtime suites use it.
func Check(t testing.TB) func() {
	t.Helper()
	baseline := make(map[int64]bool)
	for _, g := range stacks() {
		baseline[g.id] = true
	}
	return func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		if leaks := settle(baseline); len(leaks) > 0 {
			t.Error(report(leaks))
		}
	}
}

// Main wraps m.Run with a whole-package sweep: after the last test, every
// non-infrastructure goroutine in the process must exit within the grace
// period. Use from TestMain as os.Exit(leakcheck.Main(m)). Unlike Check,
// the baseline is empty — at package exit nothing of ours may survive.
func Main(m *testing.M) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	if leaks := settle(map[int64]bool{}); len(leaks) > 0 {
		fmt.Print(report(leaks))
		return 1
	}
	return code
}
