package leakcheck

import (
	"testing"
	"time"
)

// recorder satisfies testing.TB by embedding the real t but swallows
// Error calls so the detector's positive path can be exercised without
// failing the suite.
type recorder struct {
	testing.TB
	errored bool
}

func (r *recorder) Error(args ...any) { r.errored = true }
func (r *recorder) Failed() bool      { return false }
func (r *recorder) Helper()           {}

func shortGrace(t *testing.T, d time.Duration) {
	t.Helper()
	old := gracePeriod
	gracePeriod = d
	t.Cleanup(func() { gracePeriod = old })
}

func TestParseHeader(t *testing.T) {
	id, ok := parseHeader("goroutine 42 [chan receive]:\nmain.f()")
	if !ok || id != 42 {
		t.Fatalf("parseHeader = %d, %v", id, ok)
	}
	if _, ok := parseHeader("not a goroutine"); ok {
		t.Fatal("accepted garbage header")
	}
}

// TestCheckCleanPass: a goroutine that exits before the verifier's grace
// period elapses is not a leak.
func TestCheckCleanPass(t *testing.T) {
	rec := &recorder{TB: t}
	verify := Check(rec)
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	verify()
	<-done
	if rec.errored {
		t.Fatal("clean test reported a leak")
	}
}

// TestCheckDetectsLeak: a goroutine still parked after the grace period is
// reported.
func TestCheckDetectsLeak(t *testing.T) {
	shortGrace(t, 50*time.Millisecond)
	rec := &recorder{TB: t}
	verify := Check(rec)
	block := make(chan struct{})
	go func() { <-block }()
	verify()
	close(block) // release it so the leak doesn't outlive this test
	if !rec.errored {
		t.Fatal("leaked goroutine not detected")
	}
}

// TestCheckBaselinesPreexisting: goroutines alive before Check are the
// caller's business, not this test's.
func TestCheckBaselinesPreexisting(t *testing.T) {
	shortGrace(t, 50*time.Millisecond)
	block := make(chan struct{})
	go func() { <-block }()
	time.Sleep(time.Millisecond) // let it park so the snapshot sees it
	rec := &recorder{TB: t}
	verify := Check(rec)
	verify()
	close(block)
	if rec.errored {
		t.Fatal("pre-existing goroutine blamed on the checked region")
	}
}

// TestCheckSkipsOnFailure: a test that already failed gets no leak pile-on.
func TestCheckSkipsOnFailure(t *testing.T) {
	shortGrace(t, 50*time.Millisecond)
	rec := &failedRecorder{recorder{TB: t}}
	verify := Check(rec)
	block := make(chan struct{})
	go func() { <-block }()
	verify()
	close(block)
	if rec.errored {
		t.Fatal("leak reported despite prior test failure")
	}
}

type failedRecorder struct{ recorder }

func (r *failedRecorder) Failed() bool { return true }
