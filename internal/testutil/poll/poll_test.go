package poll

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestUntilReturnsOnceTrue(t *testing.T) {
	var n atomic.Int64
	Until(t, "counter to reach 3", func() bool { return n.Add(1) >= 3 })
	if got := n.Load(); got < 3 {
		t.Fatalf("cond evaluated %d times, want >= 3", got)
	}
}

func TestWaitReportsTimeout(t *testing.T) {
	start := time.Now()
	if Wait(20*time.Millisecond, func() bool { return false }) {
		t.Fatal("Wait = true for a never-true condition")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Wait returned before the deadline")
	}
	if !Wait(time.Millisecond, func() bool { return true }) {
		t.Fatal("Wait = false for an immediately-true condition")
	}
}

func TestUntilBlockedInSeesParkedGoroutine(t *testing.T) {
	block := make(chan struct{})
	go func() { parkHere(block) }()
	UntilBlockedIn(t, "poll.parkHere")
	close(block)
}

//go:noinline
func parkHere(c chan struct{}) { <-c }
