// Package poll centralizes condition waiting for the runtime's tests. The
// suites exercise genuinely asynchronous machinery — pool resizes, crash
// respawns, queue drains — where the assertion is "this becomes true
// promptly", not "this is true after N milliseconds". A bare time.Sleep
// encodes the latter and flakes on slow machines; these helpers poll with
// backoff under a generous deadline, so tests pass as fast as the runtime
// settles and fail only on a real hang.
package poll

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultDeadline bounds Until; it is deliberately much larger than any
// expected settle time, because it only matters when the test already lost.
const DefaultDeadline = 10 * time.Second

// Until polls cond until it returns true, failing t after DefaultDeadline.
// what names the condition in the failure message.
func Until(t testing.TB, what string, cond func() bool) {
	t.Helper()
	UntilFor(t, DefaultDeadline, what, cond)
}

// UntilFor is Until with an explicit deadline.
func UntilFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	if !Wait(d, cond) {
		t.Fatalf("poll: timed out after %v waiting for %s", d, what)
	}
}

// Wait polls cond until it returns true or d elapses, and reports whether
// the condition held. Use when the caller wants to decide what a timeout
// means (e.g. both outcomes are legal and only liveness is asserted).
func Wait(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	wait := 100 * time.Microsecond
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(wait)
		if wait < 5*time.Millisecond {
			wait *= 2
		}
	}
}

// UntilBlockedIn waits until some goroutine's stack contains fn (a function
// name substring such as "(*Loop).WaitPending"). It replaces the classic
// "sleep so the goroutine reaches its blocking point" idiom with a
// deterministic observation of the scheduler state.
func UntilBlockedIn(t testing.TB, fn string) {
	t.Helper()
	Until(t, "a goroutine to block in "+fn, func() bool {
		return strings.Contains(allStacks(), fn)
	})
}

func allStacks() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}
