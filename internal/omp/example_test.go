package omp_test

import (
	"fmt"
	"sync/atomic"

	"repro/internal/omp"
)

// ExampleParallelFor distributes a loop across a team, like
// `#pragma omp parallel for num_threads(4)`.
func ExampleParallelFor() {
	data := make([]int, 8)
	omp.ParallelFor(4, 0, len(data), func(i int) {
		data[i] = i * i
	})
	fmt.Println(data)
	// Output: [0 1 4 9 16 25 36 49]
}

// ExampleParallelReduce computes a sum reduction, like
// `#pragma omp parallel for reduction(+:sum)`.
func ExampleParallelReduce() {
	sum := omp.ParallelReduce(4, 1, 101, 0,
		func(i, acc int) int { return acc + i },
		func(a, b int) int { return a + b })
	fmt.Println(sum)
	// Output: 5050
}

// ExampleTeam_Single shows a single construct inside a region: one member
// initializes, the implicit barrier publishes the result to everyone.
func ExampleTeam_Single() {
	var initialized atomic.Int64
	omp.Parallel(4, func(tc *omp.Team) {
		tc.Single(func() { initialized.Add(1) })
		_ = initialized.Load() // every member sees 1 here
	})
	fmt.Println(initialized.Load())
	// Output: 1
}

// ExampleTeam_ForOrdered prints loop iterations in order even though the
// body executes in parallel (`#pragma omp for ordered`).
func ExampleTeam_ForOrdered() {
	omp.Parallel(3, func(tc *omp.Team) {
		tc.ForOrdered(0, 5, omp.Dynamic, 1, func(i int, ordered func(func())) {
			square := i * i // computed in parallel
			ordered(func() { fmt.Println(square) })
		})
	})
	// Output:
	// 0
	// 1
	// 4
	// 9
	// 16
}
