package omp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelTeamShape(t *testing.T) {
	var ids sync.Map
	var master atomic.Int64
	Parallel(4, func(tc *Team) {
		if tc.NumThreads() != 4 {
			t.Errorf("NumThreads = %d", tc.NumThreads())
		}
		ids.Store(tc.ThreadNum(), true)
		if tc.ThreadNum() == 0 {
			master.Add(1)
		}
	})
	for i := 0; i < 4; i++ {
		if _, ok := ids.Load(i); !ok {
			t.Fatalf("thread id %d never ran", i)
		}
	}
	if master.Load() != 1 {
		t.Fatalf("master ran %d times", master.Load())
	}
}

func TestParallelDefaultThreads(t *testing.T) {
	var n atomic.Int64
	Parallel(0, func(tc *Team) { n.Add(1) })
	if int(n.Load()) != DefaultNumThreads() {
		t.Fatalf("team size = %d, want %d", n.Load(), DefaultNumThreads())
	}
}

func TestMasterIsCaller(t *testing.T) {
	// OpenMP fork-join: the encountering thread is the master and
	// participates — the root cause of the paper's EDT-responsiveness
	// problem with synchronous parallel regions.
	type token struct{}
	callerCh := make(chan token, 1)
	callerCh <- token{}
	var masterGotToken atomic.Bool
	Parallel(2, func(tc *Team) {
		if tc.ThreadNum() == 0 {
			select {
			case <-callerCh:
				masterGotToken.Store(true)
			default:
			}
		}
	})
	if !masterGotToken.Load() {
		t.Fatal("master did not run on the calling goroutine's schedule")
	}
}

func coverage(n, lo, hi int, sched Schedule, chunk int) []int32 {
	counts := make([]int32, hi-lo)
	Parallel(n, func(tc *Team) {
		tc.For(lo, hi, sched, chunk, func(i int) {
			atomic.AddInt32(&counts[i-lo], 1)
		})
	})
	return counts
}

func TestForSchedulesCoverEveryIterationOnce(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 3, 7} {
			for _, n := range []int{1, 2, 3, 8} {
				counts := coverage(n, 5, 105, sched, chunk)
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("sched=%v chunk=%d n=%d: iteration %d ran %d times",
							sched, chunk, n, i+5, c)
					}
				}
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	var ran atomic.Int64
	Parallel(3, func(tc *Team) {
		tc.For(10, 10, Static, 0, func(i int) { ran.Add(1) })
		tc.For(10, 5, Dynamic, 2, func(i int) { ran.Add(1) })
	})
	if ran.Load() != 0 {
		t.Fatalf("empty ranges executed %d iterations", ran.Load())
	}
}

func TestForSchedulePropertySumMatchesSequential(t *testing.T) {
	f := func(vals []int32, nt uint8, sched uint8, chunk uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		var got atomic.Int64
		ParallelForSchedule(int(nt%8)+1, 0, len(vals),
			Schedule(sched%3), int(chunk%9), func(i int) {
				got.Add(int64(vals[i]))
			})
		return got.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierPhases(t *testing.T) {
	const n, rounds = 4, 50
	counter := make([]int32, rounds)
	Parallel(n, func(tc *Team) {
		for r := 0; r < rounds; r++ {
			atomic.AddInt32(&counter[r], 1)
			tc.Barrier()
			// After the barrier every member must see the full count.
			if got := atomic.LoadInt32(&counter[r]); got != n {
				t.Errorf("round %d: counter = %d after barrier, want %d", r, got, n)
			}
			tc.Barrier()
		}
	})
}

func TestSingleRunsOnce(t *testing.T) {
	var n atomic.Int64
	var after atomic.Int64
	Parallel(6, func(tc *Team) {
		for r := 0; r < 10; r++ {
			tc.Single(func() { n.Add(1) })
			// Implicit barrier: all members see the single done.
			after.Store(n.Load())
		}
	})
	if n.Load() != 10 {
		t.Fatalf("Single ran %d times across 10 rounds", n.Load())
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	var ran sync.Map
	Parallel(4, func(tc *Team) {
		tc.Master(func() { ran.Store(tc.ThreadNum(), true) })
	})
	count := 0
	ran.Range(func(k, v any) bool {
		count++
		if k.(int) != 0 {
			t.Fatalf("Master ran on thread %d", k)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("Master ran on %d threads", count)
	}
}

func TestSectionsEachOnce(t *testing.T) {
	var counts [5]int32
	Parallel(3, func(tc *Team) {
		tc.Sections(
			func() { atomic.AddInt32(&counts[0], 1) },
			func() { atomic.AddInt32(&counts[1], 1) },
			func() { atomic.AddInt32(&counts[2], 1) },
			func() { atomic.AddInt32(&counts[3], 1) },
			func() { atomic.AddInt32(&counts[4], 1) },
		)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("section %d ran %d times", i, c)
		}
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	var inside atomic.Int64
	var maxSeen atomic.Int64
	var sum int64 // protected by the critical section itself
	Parallel(8, func(tc *Team) {
		for i := 0; i < 200; i++ {
			Critical("sum", func() {
				if v := inside.Add(1); v > maxSeen.Load() {
					maxSeen.Store(v)
				}
				sum++
				inside.Add(-1)
			})
		}
	})
	if maxSeen.Load() != 1 {
		t.Fatalf("critical section concurrency = %d, want 1", maxSeen.Load())
	}
	if sum != 8*200 {
		t.Fatalf("sum = %d, want %d", sum, 8*200)
	}
}

func TestCriticalDifferentNamesIndependent(t *testing.T) {
	// Two differently named criticals must be able to interleave; just
	// check they both work without deadlock when nested.
	done := make(chan struct{})
	go func() {
		Critical("outer", func() {
			Critical("inner", func() {})
		})
		close(done)
	}()
	<-done
}

func TestReduceSum(t *testing.T) {
	got := 0.0
	Parallel(5, func(tc *Team) {
		local := float64(tc.ThreadNum() + 1)
		r := Reduce(tc, local, func(a, b float64) float64 { return a + b })
		if tc.ThreadNum() == 0 {
			got = r
		}
		// Every member receives the reduction result.
		if r != 15 {
			t.Errorf("thread %d: Reduce = %v, want 15", tc.ThreadNum(), r)
		}
	})
	if got != 15 {
		t.Fatalf("Reduce = %v, want 15", got)
	}
}

func TestReduceRepeated(t *testing.T) {
	Parallel(3, func(tc *Team) {
		for r := 1; r <= 5; r++ {
			got := Reduce(tc, r, func(a, b int) int { return a + b })
			if got != 3*r {
				t.Errorf("round %d: Reduce = %d, want %d", r, got, 3*r)
			}
		}
	})
}

func TestParallelReduceMatchesSequential(t *testing.T) {
	f := func(vals []int32, nt uint8) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := ParallelReduce(int(nt%8)+1, 0, len(vals), int64(0),
			func(i int, acc int64) int64 { return acc + int64(vals[i]) },
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTasksRunByTaskwait(t *testing.T) {
	var n atomic.Int64
	Parallel(4, func(tc *Team) {
		tc.Master(func() {
			for i := 0; i < 100; i++ {
				tc.Task(func() { n.Add(1) })
			}
			tc.Taskwait()
			if got := n.Load(); got != 100 {
				t.Errorf("after Taskwait: %d/100 tasks done", got)
			}
		})
	})
}

func TestTasksDrainedAtRegionEnd(t *testing.T) {
	var n atomic.Int64
	Parallel(2, func(tc *Team) {
		tc.Task(func() { n.Add(1) })
	})
	if n.Load() != 2 {
		t.Fatalf("region end left %d/2 tasks unexecuted", 2-n.Load())
	}
}

func TestNestedTasks(t *testing.T) {
	var n atomic.Int64
	Parallel(2, func(tc *Team) {
		tc.Master(func() {
			tc.Task(func() {
				n.Add(1)
				tc.Task(func() { n.Add(1) })
			})
			tc.Taskwait()
		})
	})
	if n.Load() != 2 {
		t.Fatalf("nested task not executed: n = %d", n.Load())
	}
}

func TestNestedParallelRegions(t *testing.T) {
	var n atomic.Int64
	Parallel(2, func(outer *Team) {
		Parallel(2, func(inner *Team) {
			n.Add(1)
		})
	})
	if n.Load() != 4 {
		t.Fatalf("nested regions ran %d bodies, want 4", n.Load())
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule names wrong")
	}
	if Schedule(9).String() == "" {
		t.Fatal("unknown schedule should still stringify")
	}
}

func TestGuidedChunksShrinkButCover(t *testing.T) {
	// Larger space to exercise the shrinking-chunk path.
	counts := coverage(4, 0, 10000, Guided, 2)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("guided: iteration %d ran %d times", i, c)
		}
	}
}

func TestDeterministicResultUnderRandomWork(t *testing.T) {
	// ParallelFor over random work must produce the same histogram as the
	// sequential loop regardless of interleaving.
	r := rand.New(rand.NewSource(7))
	data := make([]int, 5000)
	for i := range data {
		data[i] = r.Intn(100)
	}
	want := make([]int64, 100)
	for _, v := range data {
		want[v]++
	}
	got := make([]int64, 100)
	ParallelForSchedule(6, 0, len(data), Dynamic, 16, func(i int) {
		atomic.AddInt64(&got[data[i]], 1)
	})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("bucket %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func BenchmarkForkJoinOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parallel(4, func(tc *Team) {})
	}
}

func BenchmarkBarrier(b *testing.B) {
	Parallel(4, func(tc *Team) {
		for i := 0; i < b.N; i++ {
			tc.Barrier()
		}
	})
}

func BenchmarkParallelForStatic(b *testing.B) {
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(4, 0, len(data), func(j int) { data[j] = float64(j) * 1.5 })
	}
}

func BenchmarkParallelForDynamic(b *testing.B) {
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelForSchedule(4, 0, len(data), Dynamic, 256, func(j int) { data[j] = float64(j) * 1.5 })
	}
}

func BenchmarkReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ParallelReduce(4, 0, 1<<14, 0.0,
			func(i int, acc float64) float64 { return acc + float64(i) },
			func(a, b float64) float64 { return a + b })
	}
}

func TestParallelSections(t *testing.T) {
	var a, b, c atomic.Int64
	ParallelSections(0,
		func() { a.Add(1) },
		func() { b.Add(1) },
		func() { c.Add(1) },
	)
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Fatalf("sections ran %d/%d/%d times", a.Load(), b.Load(), c.Load())
	}
	// Explicit team size, more sections than threads.
	var n atomic.Int64
	fns := make([]func(), 10)
	for i := range fns {
		fns[i] = func() { n.Add(1) }
	}
	ParallelSections(2, fns...)
	if n.Load() != 10 {
		t.Fatalf("ran %d/10 sections", n.Load())
	}
	ParallelSections(1) // zero sections: no-op, no hang
}
