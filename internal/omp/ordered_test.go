package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForOrderedSequencesSections(t *testing.T) {
	const n = 200
	var mu sync.Mutex
	var order []int
	var unorderedWork atomic.Int64
	Parallel(4, func(tc *Team) {
		tc.ForOrdered(0, n, Dynamic, 1, func(i int, ordered func(func())) {
			unorderedWork.Add(1) // pre-section work runs in any order
			ordered(func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	})
	if len(order) != n {
		t.Fatalf("ordered sections ran %d times", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered sections out of order at %d: %v...", i, order[:i+1])
		}
	}
	if unorderedWork.Load() != n {
		t.Fatalf("body ran %d times", unorderedWork.Load())
	}
}

func TestForOrderedNonZeroLowerBound(t *testing.T) {
	var mu sync.Mutex
	var order []int
	Parallel(3, func(tc *Team) {
		tc.ForOrdered(10, 30, Dynamic, 2, func(i int, ordered func(func())) {
			ordered(func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	})
	for k, v := range order {
		if v != 10+k {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestForOrderedSingleThread(t *testing.T) {
	var order []int
	Parallel(1, func(tc *Team) {
		tc.ForOrdered(0, 5, Static, 0, func(i int, ordered func(func())) {
			ordered(func() { order = append(order, i) })
		})
	})
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
}

func TestSetDefaultNumThreads(t *testing.T) {
	defer SetDefaultNumThreads(0)
	SetDefaultNumThreads(3)
	if MaxThreads() != 3 || DefaultNumThreads() != 3 {
		t.Fatalf("MaxThreads = %d", MaxThreads())
	}
	var n atomic.Int64
	Parallel(0, func(tc *Team) { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("team size = %d under nthreads-var 3", n.Load())
	}
	SetDefaultNumThreads(0)
	if MaxThreads() != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset MaxThreads = %d", MaxThreads())
	}
	SetDefaultNumThreads(-4) // clamps to "unset"
	if MaxThreads() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative did not reset")
	}
}

func TestWtime(t *testing.T) {
	a := Wtime()
	b := Wtime()
	if b < a {
		t.Fatal("Wtime went backwards")
	}
	if Wtick() <= 0 {
		t.Fatal("Wtick")
	}
}

func BenchmarkForOrdered(b *testing.B) {
	Parallel(4, func(tc *Team) {
		tc.Master(func() {
			// Only measure from the master; the loop below is SPMD.
		})
	})
	for i := 0; i < b.N; i++ {
		Parallel(4, func(tc *Team) {
			tc.ForOrdered(0, 256, Dynamic, 1, func(j int, ordered func(func())) {
				ordered(func() {})
			})
		})
	}
}
