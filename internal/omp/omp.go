// Package omp is the traditional OpenMP fork-join substrate the paper's
// evaluation builds on: the computational kernels inside event handlers are
// parallelized with `//omp parallel` / `//omp for`, both in the
// "synchronous parallel" baseline (where the EDT is the master thread and
// participates in the work-sharing region — the responsiveness problem the
// paper spells out in the introduction) and in the "asynchronous parallel"
// configuration (where a worker runs the region).
//
// The model is SPMD: Parallel forks a team, every team member runs the body,
// and work-sharing constructs (For, Sections, Single) must be encountered by
// all members in the same order — the same constraint the OpenMP
// specification imposes.
//
// The calling goroutine becomes the team's master (thread 0) and
// participates in the region: this deliberate fidelity to OpenMP's fork-join
// model is what makes the EDT unresponsive in the synchronous-parallel
// baseline, which the evaluation measures.
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects the work-sharing loop schedule (the schedule clause).
type Schedule int

const (
	// Static divides iterations into contiguous chunks assigned round-robin
	// (one block per thread when chunk is 0).
	Static Schedule = iota
	// Dynamic hands out chunks first-come-first-served.
	Dynamic
	// Guided hands out exponentially shrinking chunks.
	Guided
)

// String returns the clause spelling.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// DefaultNumThreads returns the team size used when a Parallel call passes
// n <= 0: the nthreads-var ICV (SetDefaultNumThreads), defaulting to the
// available parallelism.
func DefaultNumThreads() int { return defaultNumThreads() }

// team is the shared state of one parallel region.
type team struct {
	n   int
	bar *barrier

	mu         sync.Mutex
	constructs map[int]any // construct ordinal -> shared state

	tasks     taskQueue
	inFlight  atomic.Int64
	taskSense sync.Cond
}

// Team is a member's view of its parallel region: thread id, team size, and
// the work-sharing and synchronization constructs.
type Team struct {
	t   *team
	id  int
	seq int // per-member construct ordinal (SPMD lockstep)
}

// ThreadNum returns the member's id in [0, NumThreads), 0 being the master.
func (tc *Team) ThreadNum() int { return tc.id }

// NumThreads returns the team size.
func (tc *Team) NumThreads() int { return tc.t.n }

// Parallel runs body on a team of n goroutines (n <= 0 means
// DefaultNumThreads). The caller is the master (thread 0) and participates;
// Parallel returns when every member has finished the body — the synchronous
// "join" the paper contrasts with its asynchronous executor model.
func Parallel(n int, body func(tc *Team)) {
	if n <= 0 {
		n = DefaultNumThreads()
	}
	t := &team{n: n, bar: newBarrier(n), constructs: make(map[int]any)}
	t.taskSense.L = &t.mu
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(&Team{t: t, id: id})
		}(i)
	}
	body(&Team{t: t, id: 0})
	wg.Wait()
	// Region end is a task scheduling point: no task may outlive its region.
	t.drainTasks()
}

// Barrier synchronizes all team members. It is a task scheduling point:
// pending explicit tasks are drained before the barrier releases.
func (tc *Team) Barrier() {
	tc.t.drainTasks()
	tc.t.bar.await()
}

// construct returns the shared state for the member's next construct,
// creating it with mk on first arrival.
func (tc *Team) construct(mk func() any) any {
	tc.seq++
	k := tc.seq
	t := tc.t
	t.mu.Lock()
	st, ok := t.constructs[k]
	if !ok {
		st = mk()
		t.constructs[k] = st
	}
	t.mu.Unlock()
	return st
}

// loopState is the shared chunk dispenser for Dynamic and Guided schedules.
type loopState struct {
	next atomic.Int64
}

// For executes the iteration space [lo, hi) across the team using the given
// schedule and chunk size (chunk <= 0 selects the schedule's default), then
// joins at an implicit barrier. Every team member must call For.
func (tc *Team) For(lo, hi int, sched Schedule, chunk int, body func(i int)) {
	tc.ForNowait(lo, hi, sched, chunk, body)
	tc.Barrier()
}

// ForNowait is For with the nowait clause: no barrier at loop end.
func (tc *Team) ForNowait(lo, hi int, sched Schedule, chunk int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		tc.construct(func() any { return nil }) // keep construct ordinals aligned
		return
	}
	switch sched {
	case Static:
		tc.construct(func() any { return nil })
		if chunk <= 0 {
			// One contiguous block per thread.
			per := n / tc.t.n
			rem := n % tc.t.n
			start := lo + tc.id*per + min(tc.id, rem)
			size := per
			if tc.id < rem {
				size++
			}
			for i := start; i < start+size; i++ {
				body(i)
			}
			return
		}
		// Round-robin chunks.
		for base := lo + tc.id*chunk; base < hi; base += tc.t.n * chunk {
			end := min(base+chunk, hi)
			for i := base; i < end; i++ {
				body(i)
			}
		}
	case Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		st := tc.construct(func() any { return &loopState{} }).(*loopState)
		for {
			base := lo + int(st.next.Add(int64(chunk))) - chunk
			if base >= hi {
				return
			}
			end := min(base+chunk, hi)
			for i := base; i < end; i++ {
				body(i)
			}
		}
	case Guided:
		if chunk <= 0 {
			chunk = 1
		}
		st := tc.construct(func() any { return &loopState{} }).(*loopState)
		for {
			// Claim an exponentially shrinking chunk: remaining / (2n),
			// floored at the minimum chunk size.
			for {
				taken := st.next.Load()
				remaining := int64(n) - taken
				if remaining <= 0 {
					return
				}
				size := remaining / int64(2*tc.t.n)
				if size < int64(chunk) {
					size = int64(chunk)
				}
				if size > remaining {
					size = remaining
				}
				if st.next.CompareAndSwap(taken, taken+size) {
					base := lo + int(taken)
					end := min(base+int(size), hi)
					for i := base; i < end; i++ {
						body(i)
					}
					break
				}
			}
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", sched))
	}
}

// singleState marks whether a Single construct has been claimed.
type singleState struct {
	claimed atomic.Bool
}

// Single runs fn on the first team member to arrive, then joins everyone at
// an implicit barrier (no nowait variant is needed by the kernels).
func (tc *Team) Single(fn func()) {
	st := tc.construct(func() any { return &singleState{} }).(*singleState)
	if st.claimed.CompareAndSwap(false, true) {
		fn()
	}
	tc.Barrier()
}

// Master runs fn only on thread 0, with no implied synchronization
// (the OpenMP master construct).
func (tc *Team) Master(fn func()) {
	if tc.id == 0 {
		fn()
	}
}

// sectionsState dispenses section indices.
type sectionsState struct {
	next atomic.Int64
}

// Sections distributes the given section bodies across the team (each runs
// exactly once) and joins at an implicit barrier.
func (tc *Team) Sections(fns ...func()) {
	st := tc.construct(func() any { return &sectionsState{} }).(*sectionsState)
	for {
		i := int(st.next.Add(1)) - 1
		if i >= len(fns) {
			break
		}
		fns[i]()
	}
	tc.Barrier()
}

// criticalRegistry holds the global named locks behind Critical.
var criticalRegistry sync.Map // name -> *sync.Mutex

// Critical runs fn under the process-wide lock for name — OpenMP critical
// sections with the same name exclude each other across all teams.
func Critical(name string, fn func()) {
	m, _ := criticalRegistry.LoadOrStore(name, &sync.Mutex{})
	mu := m.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	fn()
}

// reduceState gathers per-thread partial values.
type reduceState struct {
	mu    sync.Mutex
	parts []any
	out   any
}

// Reduce combines each member's local value with op and returns the combined
// result on every member. op must be associative and commutative. Reduce
// contains two barriers; all members must call it.
func Reduce[T any](tc *Team, local T, op func(a, b T) T) T {
	st := tc.construct(func() any { return &reduceState{} }).(*reduceState)
	st.mu.Lock()
	st.parts = append(st.parts, local)
	st.mu.Unlock()
	tc.t.bar.await()
	if tc.id == 0 {
		acc := st.parts[0].(T)
		for _, p := range st.parts[1:] {
			acc = op(acc, p.(T))
		}
		st.out = acc
	}
	tc.t.bar.await()
	return st.out.(T)
}

// ParallelFor is the combined `parallel for` construct: fork a team of n,
// run [lo,hi) with a static schedule, join.
func ParallelFor(n, lo, hi int, body func(i int)) {
	Parallel(n, func(tc *Team) {
		tc.ForNowait(lo, hi, Static, 0, body)
	})
}

// ParallelForSchedule is ParallelFor with an explicit schedule clause.
func ParallelForSchedule(n, lo, hi int, sched Schedule, chunk int, body func(i int)) {
	Parallel(n, func(tc *Team) {
		tc.ForNowait(lo, hi, sched, chunk, body)
	})
}

// ParallelSections is the combined `parallel sections` construct: fork a
// team of n (n <= 0 sizes the team to the section count, capped at the
// default) and run each section exactly once.
func ParallelSections(n int, fns ...func()) {
	if n <= 0 {
		n = len(fns)
		if max := DefaultNumThreads(); n > max {
			n = max
		}
		if n < 1 {
			n = 1
		}
	}
	Parallel(n, func(tc *Team) {
		tc.Sections(fns...)
	})
}

// ParallelReduce forks a team of n, applies body to [lo,hi) under a static
// schedule accumulating with acc/op per thread, and reduces the partials
// with op. zero is the reduction identity.
func ParallelReduce[T any](n, lo, hi int, zero T, body func(i int, acc T) T, op func(a, b T) T) T {
	var mu sync.Mutex
	result := zero
	Parallel(n, func(tc *Team) {
		local := zero
		tc.ForNowait(lo, hi, Static, 0, func(i int) {
			local = body(i, local)
		})
		mu.Lock()
		result = op(result, local)
		mu.Unlock()
	})
	return result
}

// --- explicit tasks -------------------------------------------------------

type ompTask struct{ fn func() }

type taskQueue struct {
	mu sync.Mutex
	q  []*ompTask
}

func (tq *taskQueue) push(t *ompTask) {
	tq.mu.Lock()
	tq.q = append(tq.q, t)
	tq.mu.Unlock()
}

func (tq *taskQueue) pop() *ompTask {
	tq.mu.Lock()
	defer tq.mu.Unlock()
	if len(tq.q) == 0 {
		return nil
	}
	t := tq.q[0]
	tq.q = tq.q[1:]
	return t
}

// Task defers fn as an explicit task to be executed by some team member at a
// task scheduling point (Taskwait, Barrier, region end). This reproduces the
// OpenMP `task` directive — including the paper's complaint that "the
// lifetime of a task is confined inside a parallel region".
func (tc *Team) Task(fn func()) {
	tc.t.inFlight.Add(1)
	tc.t.tasks.push(&ompTask{fn: fn})
}

// Taskwait blocks until all tasks created so far by the team have completed,
// helping to execute them (the encountering thread participates, per the
// specification).
func (tc *Team) Taskwait() {
	t := tc.t
	for {
		if task := t.tasks.pop(); task != nil {
			task.fn()
			t.inFlight.Add(-1)
			continue
		}
		if t.inFlight.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
}

func (t *team) drainTasks() {
	for {
		task := t.tasks.pop()
		if task == nil {
			return
		}
		task.fn()
		t.inFlight.Add(-1)
	}
}

// --- barrier ---------------------------------------------------------------

// barrier is a reusable sense-reversing barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	sense bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	if b.n == 1 {
		return
	}
	b.mu.Lock()
	sense := b.sense
	b.count++
	if b.count == b.n {
		b.count = 0
		b.sense = !b.sense
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for sense == b.sense {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
