package omp

import (
	"runtime"
	"sync/atomic"
	"time"
)

// nthreadsVar is the nthreads-var ICV override (0 = use the hardware
// default), mirroring omp_set_num_threads.
var nthreadsVar atomic.Int64

// SetDefaultNumThreads sets the team size used by Parallel calls that pass
// n <= 0 (omp_set_num_threads). n <= 0 restores the hardware default.
func SetDefaultNumThreads(n int) {
	if n < 0 {
		n = 0
	}
	nthreadsVar.Store(int64(n))
}

// defaultNumThreads resolves the nthreads-var ICV.
func defaultNumThreads() int {
	if n := nthreadsVar.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// MaxThreads returns the value Parallel would use for n <= 0
// (omp_get_max_threads).
func MaxThreads() int { return defaultNumThreads() }

// processStart anchors Wtime.
var processStart = time.Now()

// Wtime returns elapsed wall-clock seconds from an arbitrary fixed point in
// the past (omp_get_wtime).
func Wtime() float64 { return time.Since(processStart).Seconds() }

// Wtick returns the resolution of Wtime in seconds (omp_get_wtick).
func Wtick() float64 { return 1e-9 }
