package omp

import "sync"

// orderedState sequences ordered sections by iteration index.
type orderedState struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
}

// ForOrdered is a work-sharing loop whose body may execute one section in
// strict iteration order (the OpenMP `for ordered` construct). The body
// receives the iteration index and an ordered function; calling
// ordered(fn) blocks until every earlier iteration's ordered section has
// run, executes fn, then releases the next iteration. Each iteration must
// call ordered exactly once — skipping it stalls later iterations, exactly
// as in OpenMP. An implicit barrier joins the team at loop end.
//
// A dynamic schedule with small chunks is usually right here: with large
// static chunks, iteration i+1 often sits behind the same thread as i and
// ordering forces near-serial execution.
func (tc *Team) ForOrdered(lo, hi int, sched Schedule, chunk int, body func(i int, ordered func(fn func()))) {
	st := tc.construct(func() any {
		s := &orderedState{next: lo}
		s.cond = sync.NewCond(&s.mu)
		return s
	}).(*orderedState)
	tc.ForNowait(lo, hi, sched, chunk, func(i int) {
		body(i, func(fn func()) {
			st.mu.Lock()
			for st.next != i {
				st.cond.Wait()
			}
			st.mu.Unlock()
			// Only iteration i can be here; no lock needed around fn, and
			// holding the lock would serialize fn against the waiters'
			// wakeup path.
			fn()
			st.mu.Lock()
			st.next = i + 1
			st.cond.Broadcast()
			st.mu.Unlock()
		})
	})
	tc.Barrier()
}
