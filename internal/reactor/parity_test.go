package reactor

// Compile-parity assertions for the platform seam: every sys* helper and
// the poller constructor must keep identical signatures across
// sys_linux.go, sys_darwin.go, and sys_stub.go. The file carries no build
// tag on purpose — `GOOS=windows go vet ./internal/reactor/` (the CI
// cross-compile check) fails the moment the stub drifts from the real
// backends, instead of the drift surfacing as a broken build on someone
// else's machine.

var (
	_ func(string) (int, string, error) = sysListen
	_ func(int) (int, error)            = sysAccept
	_ func(string) (int, error)         = sysDial
	_ func(int) error                   = sysSetNonblock
	_ func(int, []byte) (int, error)    = sysRead
	_ func(int, []byte) (int, error)    = sysWrite
	_ func(int) error                   = sysClose
	_ func(error) bool                  = wouldBlock
	_ func(error) bool                  = isEINTR
	_ func(int) string                  = sysPeerAddr
	_ func() (poller, error)            = newPoller
	_ bool                              = Supported
)
