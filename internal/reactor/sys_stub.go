//go:build !linux && !darwin

package reactor

import "errors"

// Supported reports whether this platform has a reactor poller. Without
// one, New returns ErrUnsupported and callers use their portable
// goroutine-per-connection fallback (netloop's default transport).
const Supported = false

var errStub = errors.New("reactor: unsupported platform")

func newPoller() (poller, error) { return nil, ErrUnsupported }

func sysListen(addr string) (int, string, error) { return -1, "", errStub }

func sysAccept(lfd int) (int, error) { return -1, errStub }

func sysDial(addr string) (int, error) { return -1, errStub }

func sysSetNonblock(fd int) error { return errStub }

func sysRead(fd int, p []byte) (int, error) { return 0, errStub }

func sysWrite(fd int, p []byte) (int, error) { return 0, errStub }

func sysClose(fd int) error { return errStub }

func wouldBlock(err error) bool { return false }

func isEINTR(err error) bool { return false }

func sysPeerAddr(fd int) string { return "" }
