package reactor

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/supervise"
	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
	"repro/internal/trace"
)

func newTestSupervised(t *testing.T, name string) *Supervised {
	t.Helper()
	if !Supported {
		t.Skip("no reactor poller on this platform")
	}
	s, err := NewSupervised(name, &gid.Registry{}, Options{}, supervise.Options{
		MaxRestarts:    10,
		Window:         time.Minute,
		BackoffInitial: time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crash kills the current generation's poll goroutine: a posted
// runtime.Goexit escapes contain's recover (no panic value) and lands in
// run()'s crash path — the same death a chaos Kill injects.
func crash(t *testing.T, s *Supervised) {
	t.Helper()
	if err := s.Current().Post(func() { runtime.Goexit() }); err != nil {
		t.Fatalf("post crash: %v", err)
	}
}

// TestSupervisedReactorRestartsAndKeepsServing is the heart of the
// survivability story: a poll-goroutine death fails in-flight connections
// with ErrPollCrash, the supervisor builds a fresh generation, the
// listener survives onto it (same address), and new clients are served —
// all traced as OpReactorRestart.
func TestSupervisedReactorRestartsAndKeepsServing(t *testing.T) {
	defer leakcheck.Check(t)()
	buf := trace.NewBuffer(64)
	defer trace.Use(buf)()
	s := newTestSupervised(t, "sup")
	defer s.Stop()

	var srv collector
	addr, err := s.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		h := srv.handlers()
		h.OnReadable = func(c *Conn, data []byte) { c.Write(data) }
		return h
	})
	if err != nil {
		t.Fatal(err)
	}

	// Generation 0 serves.
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write([]byte("gen0")); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, 4)
	if _, err := cli.Read(echo); err != nil || string(echo) != "gen0" {
		t.Fatalf("gen0 echo = %q, %v", echo, err)
	}

	crash(t, s)

	// The in-flight connection fails typed, not silently.
	poll.Until(t, "in-flight conn failed", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, ErrPollCrash) {
		t.Fatalf("in-flight close err = %v, want ErrPollCrash", err)
	}
	if s.RStats().LoopCrashes.Value() == 0 {
		t.Fatal("LoopCrashes not counted")
	}

	// A fresh generation takes over the same address.
	poll.UntilFor(t, 10*time.Second, "restarted generation serves", func() bool {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return false
		}
		defer c.Close()
		if _, err := c.Write([]byte("gen1")); err != nil {
			return false
		}
		c.SetReadDeadline(time.Now().Add(time.Second))
		b := make([]byte, 4)
		n, err := c.Read(b)
		return err == nil && string(b[:n]) == "gen1"
	})
	if buf.CountOp(trace.OpReactorRestart) == 0 {
		t.Fatal("no OpReactorRestart traced")
	}
	if h := s.Health(); h.Generation == 0 {
		t.Fatalf("health still at generation 0: %+v", h)
	}
}

// TestSupervisedListenAfterRestart: listeners added while a restart is in
// flight attach to the next generation instead of failing.
func TestSupervisedSurvivesRepeatedCrashes(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newTestSupervised(t, "multi")
	defer s.Stop()

	addr, err := s.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{OnReadable: func(c *Conn, data []byte) { c.Write(data) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		poll.UntilFor(t, 10*time.Second, "generation serves", func() bool {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				return false
			}
			defer c.Close()
			if _, err := c.Write([]byte("ping")); err != nil {
				return false
			}
			c.SetReadDeadline(time.Now().Add(time.Second))
			b := make([]byte, 4)
			n, err := c.Read(b)
			return err == nil && string(b[:n]) == "ping"
		})
		// Kill whichever generation is current right now; tolerate a post
		// racing a restart (ErrClosed just means the crash already took)
		// and wait for the crash to register before the next round, so
		// each kill hits a live generation.
		before := s.RStats().LoopCrashes.Value()
		poll.UntilFor(t, 10*time.Second, "crash landed", func() bool {
			if r := s.Current(); r != nil {
				_ = r.Post(func() { runtime.Goexit() })
			}
			return s.RStats().LoopCrashes.Value() > before
		})
	}
	poll.UntilFor(t, 10*time.Second, "final generation serves", func() bool {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
	if got := s.RStats().LoopCrashes.Value(); got < 3 {
		t.Fatalf("LoopCrashes = %d, want >= 3", got)
	}
}

// TestStopDuringRestartWindow is the shutdown/restart race regression: a
// Stop issued while the supervisor is mid-restart must neither deadlock
// nor leave a freshly-spawned generation running. Run with -race; the
// iteration count gives the schedules room to interleave.
func TestStopDuringRestartWindow(t *testing.T) {
	defer leakcheck.Check(t)()
	if !Supported {
		t.Skip("no reactor poller on this platform")
	}
	for i := 0; i < 20; i++ {
		s := newTestSupervised(t, "race")
		if _, err := s.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
			return HandlerFuncs{}
		}); err != nil {
			t.Fatal(err)
		}
		crash(t, s)
		done := make(chan struct{})
		go func() {
			s.Stop() // races the supervisor's respawn
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: Stop deadlocked against restart", i)
		}
	}
}

// TestWatchdogSeesCrashedUnsupervisedReactor is the control for the
// supervision story: an unsupervised reactor that loses its poll goroutine
// stays dead, and the watchdog's probe reads it as down (not merely
// stalled) because posts fail typed.
func TestWatchdogSeesCrashedUnsupervisedReactor(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "bare")
	defer r.Stop()
	e := r.AsExecutor()

	// Alive: a probe-shaped post completes.
	if err := e.Post(func() {}).Wait(); err != nil {
		t.Fatalf("healthy post: %v", err)
	}

	w := supervise.NewWatchdog(5 * time.Millisecond)
	w.Watch("bare", e, 25*time.Millisecond)
	w.Start()
	defer w.Stop()

	if err := r.Post(func() { runtime.Goexit() }); err != nil {
		t.Fatal(err)
	}
	poll.UntilFor(t, 10*time.Second, "watchdog reads down", func() bool {
		return w.Health()["bare"].LivenessValue() == supervise.LiveDown
	})
	if err := e.Post(func() {}).Wait(); !errors.Is(err, supervise.ErrTargetDown) {
		t.Fatalf("post to dead reactor = %v, want ErrTargetDown", err)
	}
}
