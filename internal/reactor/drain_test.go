package reactor

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

// TestDrainWithIdleConnsStopsPromptly: connections with nothing queued
// close through the normal path the moment a drain starts, the listener
// stops accepting, and Drain returns well before its deadline — no
// force-closes needed.
func TestDrainWithIdleConnsStopsPromptly(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "drain")

	var srv collector
	accepted := make(chan struct{}, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- struct{}{}
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Make sure the server registered the conn before draining.
	select {
	case <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("conn never accepted")
	}
	deadline := time.Now().Add(30 * time.Second)
	r.Drain(30 * time.Second)
	if time.Now().After(deadline) {
		t.Fatal("Drain ran past its deadline with nothing to flush")
	}
	if srv.closeCount() != 1 {
		t.Fatalf("conn closes = %d, want 1", srv.closeCount())
	}
	if err := srv.closeErr(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("close err = %v, want ErrConnClosed (graceful)", err)
	}
	if got := r.Stats().ForceCloses; got != 0 {
		t.Fatalf("ForceCloses = %d, want 0", got)
	}
	// Fully stopped: the address no longer accepts.
	if c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("drained reactor still accepting")
	}
	if err := r.Post(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Post after drain = %v, want ErrClosed", err)
	}
}

// TestDrainTwiceAndAfterStop: draining a draining (or stopped) reactor is
// a harmless wait, not a second teardown.
func TestDrainTwiceAndAfterStop(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "redrain")
	r.Drain(time.Second)
	r.Drain(time.Second) // second drain: just waits for the finished teardown
	r.Stop()             // as does Stop
}
