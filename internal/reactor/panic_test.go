package reactor

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// TestHandlerPanicClosesOnlyThatConn: a panicking OnReadable takes down its
// own connection (typed HandlerPanicError, panic handler notified) while
// the poll loop and every other connection keep serving.
func TestHandlerPanicClosesOnlyThatConn(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "panic")
	defer r.Stop()

	notified := make(chan any, 1)
	r.SetPanicHandler(func(v any) {
		select {
		case notified <- v:
		default:
		}
	})

	var bomb, echo collector
	bombAddr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		h := bomb.handlers()
		h.OnReadable = func(c *Conn, data []byte) { panic("handler boom") }
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	echoAddr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{OnReadable: func(c *Conn, data []byte) { c.Write(data) }}
	})
	if err != nil {
		t.Fatal(err)
	}

	cli, err := net.Dial("tcp", bombAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write([]byte("trigger")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "panicking conn closed", func() bool { return bomb.closeCount() == 1 })
	var hp *HandlerPanicError
	if err := bomb.closeErr(); !errors.As(err, &hp) || hp.Value != "handler boom" {
		t.Fatalf("close err = %v, want HandlerPanicError(handler boom)", err)
	}
	select {
	case v := <-notified:
		if v != "handler boom" {
			t.Fatalf("panic handler got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panic handler never notified")
	}
	if r.Stats().HandlerPanics != 1 {
		t.Fatalf("HandlerPanics = %d, want 1", r.Stats().HandlerPanics)
	}

	// The loop survived: a fresh echo round trip works.
	c, err := r.Dial(echoAddr, echo.handlers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write([]byte("still alive\n")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "echo after panic", func() bool { return echo.String() == "still alive\n" })
	if r.Stats().LoopCrashes != 0 {
		t.Fatalf("handler panic escalated to a loop crash")
	}
}

// TestOnClosePanicContained: a panic inside OnClose itself (already on the
// teardown path) is counted and recovered without re-entering closeConn or
// killing the loop.
func TestOnClosePanicContained(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "closepanic")
	defer r.Stop()

	closed := make(chan struct{})
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{
			OnClose: func(c *Conn, err error) {
				close(closed)
				panic("close boom")
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close() // peer EOF → OnClose fires and panics
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("OnClose never fired")
	}
	poll.Until(t, "panic counted", func() bool { return r.Stats().HandlerPanics == 1 })

	// Loop still serving.
	var echo collector
	addr2, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{OnReadable: func(c *Conn, data []byte) { c.Write(data) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Dial(addr2, echo.handlers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "echo after OnClose panic", func() bool { return echo.String() == "ok" })
}

// TestMaxConnsShedsAtAccept: the admission cap closes surplus accepted
// sockets before any handler runs, counts them, and admits again once an
// admitted connection leaves.
func TestMaxConnsShedsAtAccept(t *testing.T) {
	defer leakcheck.Check(t)()
	if !Supported {
		t.Skip("no reactor poller on this platform")
	}
	r, err := NewWithOptions("capped", &gid.Registry{}, Options{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	admitted := make(chan *Conn, 4)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		admitted <- c
		return HandlerFuncs{}
	})
	if err != nil {
		t.Fatal(err)
	}

	first, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	var srv *Conn
	select {
	case srv = <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("first conn not admitted")
	}

	// Over the cap: the socket is closed server-side without a handler.
	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	poll.Until(t, "surplus accept shed", func() bool { return r.Stats().AcceptRejects == 1 })
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := second.Read(make([]byte, 1)); err == nil {
		t.Fatalf("shed conn delivered %d bytes instead of closing", n)
	}
	select {
	case c := <-admitted:
		t.Fatalf("over-cap conn %v reached the accept handler", c)
	default:
	}

	// Free the slot: the next dial is admitted.
	srv.Close()
	poll.Until(t, "slot released", func() bool { return r.Stats().Conns == 0 })
	third, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("conn not admitted after slot freed")
	}
}
