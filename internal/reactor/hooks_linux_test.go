//go:build linux

package reactor

import "syscall"

// testPipe opens a non-blocking pipe for arbitrary-FD registration tests.
func testPipe() (r, w int, err error) {
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		return -1, -1, err
	}
	return p[0], p[1], nil
}

// setSndbuf shrinks a socket's kernel send buffer to force partial writes.
func setSndbuf(fd, size int) error {
	return syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_SNDBUF, size)
}
