//go:build darwin

package reactor

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"
)

// Supported reports whether this platform has a reactor poller.
const Supported = true

// kqueuePoller is the darwin backend: EV_CLEAR gives the same
// edge-triggered contract as EPOLLET, and a non-blocking pipe provides the
// cross-thread wakeup (EVFILT_USER would avoid the pipe but the pipe keeps
// the backends symmetrical).
type kqueuePoller struct {
	kq     int
	wakeR  int
	wakeW  int
	kevs   []syscall.Kevent_t // reused across waits: no per-wait allocation
	closeO sync.Once
}

func newPoller() (poller, error) {
	kq, err := syscall.Kqueue()
	if err != nil {
		return nil, fmt.Errorf("reactor: kqueue: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe(p[:]); err != nil {
		syscall.Close(kq)
		return nil, fmt.Errorf("reactor: pipe: %w", err)
	}
	syscall.SetNonblock(p[0], true)
	syscall.SetNonblock(p[1], true)
	kp := &kqueuePoller{kq: kq, wakeR: p[0], wakeW: p[1]}
	ev := syscall.Kevent_t{
		Ident:  uint64(kp.wakeR),
		Filter: syscall.EVFILT_READ,
		Flags:  syscall.EV_ADD,
	}
	if _, err := syscall.Kevent(kq, []syscall.Kevent_t{ev}, nil, nil); err != nil {
		kp.close()
		return nil, fmt.Errorf("reactor: register wakeup pipe: %w", err)
	}
	return kp, nil
}

func (p *kqueuePoller) change(fd int, filter int16, flags uint16) error {
	ev := syscall.Kevent_t{Ident: uint64(fd), Filter: filter, Flags: flags}
	_, err := syscall.Kevent(p.kq, []syscall.Kevent_t{ev}, nil, nil)
	return err
}

func (p *kqueuePoller) add(fd int, w bool) error {
	if err := p.change(fd, syscall.EVFILT_READ, syscall.EV_ADD|syscall.EV_CLEAR); err != nil {
		return err
	}
	if w {
		return p.change(fd, syscall.EVFILT_WRITE, syscall.EV_ADD|syscall.EV_CLEAR)
	}
	return nil
}

func (p *kqueuePoller) mod(fd int, w bool) error {
	if w {
		return p.change(fd, syscall.EVFILT_WRITE, syscall.EV_ADD|syscall.EV_CLEAR)
	}
	err := p.change(fd, syscall.EVFILT_WRITE, syscall.EV_DELETE)
	if errors.Is(err, syscall.ENOENT) {
		return nil
	}
	return err
}

func (p *kqueuePoller) del(fd int) error {
	// Closing the descriptor removes its filters; deleting explicitly keeps
	// events for a recycled fd number from leaking across connections.
	p.change(fd, syscall.EVFILT_READ, syscall.EV_DELETE)
	p.change(fd, syscall.EVFILT_WRITE, syscall.EV_DELETE)
	return nil
}

func (p *kqueuePoller) wait(evs []pollEvent, timeoutMs int) (int, bool, error) {
	if len(p.kevs) < len(evs) {
		p.kevs = make([]syscall.Kevent_t, len(evs))
	}
	kevs := p.kevs
	var ts *syscall.Timespec
	if timeoutMs >= 0 {
		ts = &syscall.Timespec{
			Sec:  int64(timeoutMs / 1000),
			Nsec: int64(timeoutMs%1000) * int64(time.Millisecond),
		}
	}
	for {
		n, err := syscall.Kevent(p.kq, nil, kevs, ts)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return 0, false, fmt.Errorf("reactor: kevent: %w", err)
		}
		out, woken := 0, false
		for i := 0; i < n; i++ {
			fd := int(kevs[i].Ident)
			if fd == p.wakeR {
				woken = true
				p.drainWake()
				continue
			}
			pe := pollEvent{fd: fd}
			switch kevs[i].Filter {
			case syscall.EVFILT_READ:
				pe.readable = true
			case syscall.EVFILT_WRITE:
				pe.writable = true
			}
			if kevs[i].Flags&syscall.EV_EOF != 0 {
				pe.hup = true
			}
			evs[out] = pe
			out++
		}
		return out, woken, nil
	}
}

func (p *kqueuePoller) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(p.wakeR, buf[:])
		if n <= 0 || err != nil {
			return
		}
	}
}

func (p *kqueuePoller) wake() {
	var one = [1]byte{1}
	for {
		_, err := syscall.Write(p.wakeW, one[:])
		if err == syscall.EINTR {
			continue
		}
		return // success, or EAGAIN: a wakeup is already pending
	}
}

func (p *kqueuePoller) close() {
	p.closeO.Do(func() {
		syscall.Close(p.kq)
		syscall.Close(p.wakeR)
		syscall.Close(p.wakeW)
	})
}

// --- socket helpers -------------------------------------------------------

func resolveIPv4(addr string) ([4]byte, int, error) {
	var ip4 [4]byte
	ta, err := net.ResolveTCPAddr("tcp4", addr)
	if err != nil {
		return ip4, 0, fmt.Errorf("reactor: resolve %q: %w", addr, err)
	}
	if ip := ta.IP.To4(); ip != nil {
		copy(ip4[:], ip)
	}
	return ip4, ta.Port, nil
}

func sysListen(addr string) (int, string, error) {
	ip4, port, err := resolveIPv4(addr)
	if err != nil {
		return -1, "", err
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return -1, "", fmt.Errorf("reactor: socket: %w", err)
	}
	syscall.CloseOnExec(fd)
	syscall.SetNonblock(fd, true)
	syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
	sa := &syscall.SockaddrInet4{Port: port, Addr: ip4}
	if err := syscall.Bind(fd, sa); err != nil {
		syscall.Close(fd)
		return -1, "", fmt.Errorf("reactor: bind %s: %w", addr, err)
	}
	if err := syscall.Listen(fd, 4096); err != nil {
		syscall.Close(fd)
		return -1, "", fmt.Errorf("reactor: listen %s: %w", addr, err)
	}
	bound, err := syscall.Getsockname(fd)
	if err != nil {
		syscall.Close(fd)
		return -1, "", fmt.Errorf("reactor: getsockname: %w", err)
	}
	b := bound.(*syscall.SockaddrInet4)
	laddr := net.JoinHostPort(net.IP(b.Addr[:]).String(), fmt.Sprint(b.Port))
	return fd, laddr, nil
}

func sysAccept(lfd int) (int, error) {
	for {
		fd, _, err := syscall.Accept(lfd)
		if err == syscall.EINTR || err == syscall.ECONNABORTED {
			continue
		}
		if err != nil {
			return -1, err
		}
		syscall.CloseOnExec(fd)
		syscall.SetNonblock(fd, true)
		syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
		return fd, nil
	}
}

func sysDial(addr string) (int, error) {
	ip4, port, err := resolveIPv4(addr)
	if err != nil {
		return -1, err
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return -1, fmt.Errorf("reactor: socket: %w", err)
	}
	syscall.CloseOnExec(fd)
	sa := &syscall.SockaddrInet4{Port: port, Addr: ip4}
	if err := syscall.Connect(fd, sa); err != nil {
		syscall.Close(fd)
		return -1, fmt.Errorf("reactor: connect %s: %w", addr, err)
	}
	syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
	return fd, nil
}

func sysSetNonblock(fd int) error { return syscall.SetNonblock(fd, true) }

func sysRead(fd int, p []byte) (int, error) { return syscall.Read(fd, p) }

func sysWrite(fd int, p []byte) (int, error) { return syscall.Write(fd, p) }

func sysClose(fd int) error { return syscall.Close(fd) }

func wouldBlock(err error) bool {
	return errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EWOULDBLOCK)
}

func isEINTR(err error) bool { return errors.Is(err, syscall.EINTR) }

// sysPeerAddr formats the peer address of a connected socket.
func sysPeerAddr(fd int) string {
	sa, err := syscall.Getpeername(fd)
	if err != nil {
		return ""
	}
	if s4, ok := sa.(*syscall.SockaddrInet4); ok {
		return net.JoinHostPort(net.IP(s4.Addr[:]).String(), fmt.Sprint(s4.Port))
	}
	return ""
}
