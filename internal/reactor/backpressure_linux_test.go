//go:build linux

package reactor

import (
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// TestSendBufferFullBackpressure fills a deliberately tiny kernel send
// buffer while the peer refuses to read: writes must spill into the
// per-connection pending queue instead of blocking, drain on writability
// edges once the peer resumes, and fire OnDrained when the queue empties.
// The client is a plain blocking net.Conn (not reactor-registered) so the
// test controls exactly when the peer reads.
func TestSendBufferFullBackpressure(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "bp")
	defer r.Stop()

	drained := make(chan struct{}, 1)
	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return HandlerFuncs{
			OnDrained: func(c *Conn) {
				select {
				case drained <- struct{}{}:
				default:
				}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-accepted

	// Shrink the server's send buffer so a few tens of KB jams it while the
	// idle client's receive buffer fills.
	if err := setSndbuf(srv.Fd(), 4096); err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("x", 32<<10))
	total := 0
	for i := 0; i < 256 && srv.PendingWrites() == 0; i++ {
		if err := srv.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		total += len(payload)
	}
	if srv.PendingWrites() == 0 {
		t.Fatal("kernel buffers swallowed everything; backpressure never engaged")
	}
	if r.Stats().PartialWrites == 0 {
		t.Fatal("PartialWrites counter not incremented")
	}

	// Resume the reader; the pending queue must drain through writability
	// edges and every byte must arrive intact.
	got := make(chan error, 1)
	go func() {
		_, err := io.CopyN(io.Discard, cli, int64(total))
		got <- err
	}()
	poll.Until(t, "pending queue drained", func() bool { return srv.PendingWrites() == 0 })
	poll.Until(t, "OnDrained fired", func() bool {
		select {
		case <-drained:
			return true
		default:
			return false
		}
	})
	if err := <-got; err != nil {
		t.Fatalf("client read: %v", err)
	}
	if r.Stats().WriteEvents == 0 {
		t.Fatal("no writability edges dispatched")
	}
}
