package reactor

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// TestIOShortWritesDeliverIntact: with every write truncated to one byte,
// the write loop grinds through the payload a byte at a time and the peer
// still receives it intact — short writes degrade throughput, not data.
func TestIOShortWritesDeliverIntact(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "short")
	defer r.Stop()
	r.SetIOInterceptor(func(op IOOp, fd int) (IOFault, time.Duration) {
		if op == IOWrite {
			return IOShort, 0
		}
		return IONone, 0
	})

	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{OnReadable: func(c *Conn, data []byte) { c.Write(data) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const msg = "short writes must not corrupt"
	if _, err := cli.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	cli.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != msg {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

// TestIOResetOnReadTearsDownConn: an injected reset travels the same error
// path as a kernel ECONNRESET — the connection closes with a typed error.
func TestIOResetOnReadTearsDownConn(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "reset")
	defer r.Stop()

	var srv collector
	accepted := make(chan struct{}, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- struct{}{}
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	<-accepted

	// Arm the fault only once the connection is up, so the accept path's
	// own reads are untouched.
	r.SetIOInterceptor(func(op IOOp, fd int) (IOFault, time.Duration) {
		if op == IORead {
			return IOReset, 0
		}
		return IONone, 0
	})
	if _, err := cli.Write([]byte("boom")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "reset conn closed", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("close err = %v, want ErrInjectedReset", err)
	}
}

// TestIOResetOnWriteFailsWriter: a write-side reset surfaces to the caller
// as a typed error instead of silently dropping the bytes.
func TestIOResetOnWriteFailsWriter(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "wreset")
	defer r.Stop()

	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return HandlerFuncs{}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn := <-accepted

	r.SetIOInterceptor(func(op IOOp, fd int) (IOFault, time.Duration) {
		if op == IOWrite {
			return IOReset, 0
		}
		return IONone, 0
	})
	if err := conn.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("Write = %v, want ErrInjectedReset", err)
	}
}

// TestIOAgainStallsConnUntilDeadlineReaps: spurious EAGAIN swallows the
// read edge — under edge-triggered registration the bytes sit in the
// kernel and nothing re-fires, which is exactly the stall the idle
// deadline exists to bound.
func TestIOAgainStallsConnUntilDeadlineReaps(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "again")
	defer r.Stop()

	var srv collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		c.SetIdleDeadline(50 * time.Millisecond)
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	r.SetIOInterceptor(func(op IOOp, fd int) (IOFault, time.Duration) {
		if op == IORead {
			return IOAgain, 0
		}
		return IONone, 0
	})
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write([]byte("swallowed")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "stalled conn reaped", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("close err = %v, want ErrIdleTimeout", err)
	}
	if srv.String() != "" {
		t.Fatalf("swallowed edge still delivered %q", srv.String())
	}
}

// TestIODelayAddsLatencyNotLoss: injected read latency slows delivery but
// every byte still arrives.
func TestIODelayAddsLatencyNotLoss(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "delay")
	defer r.Stop()

	var srv collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	r.SetIOInterceptor(func(op IOOp, fd int) (IOFault, time.Duration) {
		if op == IORead {
			return IODelay, 20 * time.Millisecond
		}
		return IONone, 0
	})
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	if _, err := cli.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "delayed bytes arrive", func() bool { return srv.String() == "slow" })
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delivery did not pay the injected latency")
	}
}
