//go:build linux

package reactor

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
)

// Supported reports whether this platform has a reactor poller.
const Supported = true

// epollET requests edge-triggered delivery. syscall.EPOLLET is declared
// as a negative int; the Events field is a uint32, so spell the bit out.
const epollET = uint32(1) << 31

// epollPoller is the linux backend: one epoll instance plus a non-blocking
// wakeup pipe registered level-triggered (it is fully drained on every
// wakeup, so level vs edge is immaterial — level keeps a missed drain from
// wedging the loop).
type epollPoller struct {
	epfd   int
	wakeR  int
	wakeW  int
	kevs   []syscall.EpollEvent // reused across waits: no per-wait allocation
	closeO sync.Once
}

func newPoller() (poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("reactor: epoll_create1: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("reactor: pipe2: %w", err)
	}
	ep := &epollPoller{epfd: epfd, wakeR: p[0], wakeW: p[1]}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(ep.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, ep.wakeR, &ev); err != nil {
		ep.close()
		return nil, fmt.Errorf("reactor: register wakeup pipe: %w", err)
	}
	return ep, nil
}

func (p *epollPoller) mask(w bool) uint32 {
	m := uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) | epollET
	if w {
		m |= uint32(syscall.EPOLLOUT)
	}
	return m
}

func (p *epollPoller) add(fd int, w bool) error {
	ev := syscall.EpollEvent{Events: p.mask(w), Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

func (p *epollPoller) mod(fd int, w bool) error {
	ev := syscall.EpollEvent{Events: p.mask(w), Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

func (p *epollPoller) del(fd int) error {
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

func (p *epollPoller) wait(evs []pollEvent, timeoutMs int) (int, bool, error) {
	if len(p.kevs) < len(evs) {
		p.kevs = make([]syscall.EpollEvent, len(evs))
	}
	kevs := p.kevs
	for {
		n, err := syscall.EpollWait(p.epfd, kevs, timeoutMs)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return 0, false, fmt.Errorf("reactor: epoll_wait: %w", err)
		}
		out, woken := 0, false
		for i := 0; i < n; i++ {
			fd := int(kevs[i].Fd)
			if fd == p.wakeR {
				woken = true
				p.drainWake()
				continue
			}
			e := kevs[i].Events
			evs[out] = pollEvent{
				fd:       fd,
				readable: e&(syscall.EPOLLIN|syscall.EPOLLPRI) != 0,
				writable: e&syscall.EPOLLOUT != 0,
				hup:      e&(syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0,
			}
			out++
		}
		return out, woken, nil
	}
}

func (p *epollPoller) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(p.wakeR, buf[:])
		if n <= 0 || err != nil {
			return
		}
	}
}

func (p *epollPoller) wake() {
	var one = [1]byte{1}
	for {
		_, err := syscall.Write(p.wakeW, one[:])
		if err == syscall.EINTR {
			continue
		}
		return // success, or EAGAIN: a wakeup is already pending
	}
}

func (p *epollPoller) close() {
	p.closeO.Do(func() {
		syscall.Close(p.epfd)
		syscall.Close(p.wakeR)
		syscall.Close(p.wakeW)
	})
}

// --- socket helpers -------------------------------------------------------

// resolveIPv4 parses "host:port" into a 4-byte address and port. An empty
// host binds the wildcard address.
func resolveIPv4(addr string) ([4]byte, int, error) {
	var ip4 [4]byte
	ta, err := net.ResolveTCPAddr("tcp4", addr)
	if err != nil {
		return ip4, 0, fmt.Errorf("reactor: resolve %q: %w", addr, err)
	}
	if ip := ta.IP.To4(); ip != nil {
		copy(ip4[:], ip)
	}
	return ip4, ta.Port, nil
}

// sysListen opens a non-blocking IPv4 listening socket on addr and returns
// its descriptor and bound address.
func sysListen(addr string) (int, string, error) {
	ip4, port, err := resolveIPv4(addr)
	if err != nil {
		return -1, "", err
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return -1, "", fmt.Errorf("reactor: socket: %w", err)
	}
	syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
	sa := &syscall.SockaddrInet4{Port: port, Addr: ip4}
	if err := syscall.Bind(fd, sa); err != nil {
		syscall.Close(fd)
		return -1, "", fmt.Errorf("reactor: bind %s: %w", addr, err)
	}
	if err := syscall.Listen(fd, 4096); err != nil {
		syscall.Close(fd)
		return -1, "", fmt.Errorf("reactor: listen %s: %w", addr, err)
	}
	bound, err := syscall.Getsockname(fd)
	if err != nil {
		syscall.Close(fd)
		return -1, "", fmt.Errorf("reactor: getsockname: %w", err)
	}
	b := bound.(*syscall.SockaddrInet4)
	laddr := net.JoinHostPort(net.IP(b.Addr[:]).String(), fmt.Sprint(b.Port))
	return fd, laddr, nil
}

// sysAccept accepts one pending connection non-blocking + close-on-exec.
// Any error (including EAGAIN) ends the caller's accept drain.
func sysAccept(lfd int) (int, error) {
	for {
		fd, _, err := syscall.Accept4(lfd, syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC)
		if err == syscall.EINTR || err == syscall.ECONNABORTED {
			continue
		}
		if err != nil {
			return -1, err
		}
		syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
		return fd, nil
	}
}

// sysDial performs a blocking IPv4 connect and hands back the descriptor
// (the caller registers it, which flips it non-blocking).
func sysDial(addr string) (int, error) {
	ip4, port, err := resolveIPv4(addr)
	if err != nil {
		return -1, err
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return -1, fmt.Errorf("reactor: socket: %w", err)
	}
	sa := &syscall.SockaddrInet4{Port: port, Addr: ip4}
	if err := syscall.Connect(fd, sa); err != nil {
		syscall.Close(fd)
		return -1, fmt.Errorf("reactor: connect %s: %w", addr, err)
	}
	syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
	return fd, nil
}

func sysSetNonblock(fd int) error { return syscall.SetNonblock(fd, true) }

func sysRead(fd int, p []byte) (int, error) { return syscall.Read(fd, p) }

func sysWrite(fd int, p []byte) (int, error) { return syscall.Write(fd, p) }

func sysClose(fd int) error { return syscall.Close(fd) }

func wouldBlock(err error) bool {
	return errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EWOULDBLOCK)
}

func isEINTR(err error) bool { return errors.Is(err, syscall.EINTR) }

// sysPeerAddr formats the peer address of a connected socket.
func sysPeerAddr(fd int) string {
	sa, err := syscall.Getpeername(fd)
	if err != nil {
		return ""
	}
	if s4, ok := sa.(*syscall.SockaddrInet4); ok {
		return net.JoinHostPort(net.IP(s4.Addr[:]).String(), fmt.Sprint(s4.Port))
	}
	return ""
}
