package reactor

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
	"repro/internal/trace"
)

// TestIdleDeadlineReapsSilentConn is the slowloris case: a client that
// connects and then says nothing is closed by the idle deadline with
// ErrIdleTimeout, counted in DeadlineCloses, and traced as OpConnDeadline.
func TestIdleDeadlineReapsSilentConn(t *testing.T) {
	defer leakcheck.Check(t)()
	buf := trace.NewBuffer(64)
	defer trace.Use(buf)()
	r := newTestReactor(t, "idle")
	defer r.Stop()

	var srv collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		c.SetIdleDeadline(50 * time.Millisecond)
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	poll.Until(t, "silent conn reaped", func() bool { return srv.closeCount() == 1 })
	if e := time.Since(start); e < 40*time.Millisecond {
		t.Fatalf("reaped after %v, before the 50ms deadline", e)
	}
	if err := srv.closeErr(); !errors.Is(err, ErrIdleTimeout) || !errors.Is(err, ErrDeadline) {
		t.Fatalf("close err = %v, want ErrIdleTimeout (wrapping ErrDeadline)", err)
	}
	if r.Stats().DeadlineCloses != 1 {
		t.Fatalf("DeadlineCloses = %d, want 1", r.Stats().DeadlineCloses)
	}
	if buf.CountOp(trace.OpConnDeadline) != 1 {
		t.Fatalf("OpConnDeadline traced %d times, want 1", buf.CountOp(trace.OpConnDeadline))
	}
}

// TestIdleDeadlineDisarmedByActivity: a client that keeps trickling bytes
// is never reaped — each read pushes the idle horizon out — and is reaped
// only once it goes silent.
func TestIdleDeadlineDisarmedByActivity(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "trickle")
	defer r.Stop()

	var srv collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		c.SetIdleDeadline(80 * time.Millisecond)
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Trickle for several deadline-lengths: the connection must survive.
	for i := 0; i < 10; i++ {
		if _, err := cli.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if srv.closeCount() != 0 {
		t.Fatalf("active conn reaped: %v", srv.closeErr())
	}
	// Go silent: now the reaper fires.
	poll.Until(t, "reaped after going silent", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("close err = %v, want ErrIdleTimeout", err)
	}
}

// TestIdleDeadlineDisarm: setting the deadline back to zero cancels the
// reaper before it fires.
func TestIdleDeadlineDisarm(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "disarm")
	defer r.Stop()

	var srv collector
	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		c.SetIdleDeadline(40 * time.Millisecond)
		accepted <- c
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn := <-accepted
	conn.SetIdleDeadline(0)

	time.Sleep(120 * time.Millisecond) // 3× the cancelled deadline
	if srv.closeCount() != 0 {
		t.Fatalf("disarmed deadline still reaped the conn: %v", srv.closeErr())
	}
}

// TestReadDeadlineOneShot: a read deadline fires ErrReadTimeout if no bytes
// arrive in time, and is satisfied (one-shot) by the first read, after
// which the connection lives indefinitely.
func TestReadDeadlineOneShot(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "readdl")
	defer r.Stop()

	var srv collector
	accepted := make(chan *Conn, 2)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Case 1: peer never sends — reaped with ErrReadTimeout.
	cli1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli1.Close()
	(<-accepted).SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	poll.Until(t, "unmet read deadline reaped", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, ErrReadTimeout) || !errors.Is(err, ErrDeadline) {
		t.Fatalf("close err = %v, want ErrReadTimeout (wrapping ErrDeadline)", err)
	}

	// Case 2: peer sends in time — the one-shot deadline is satisfied and
	// the connection survives well past the original instant.
	cli2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	(<-accepted).SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	if _, err := cli2.Write([]byte("on time")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "bytes delivered", func() bool { return srv.String() == "on time" })
	time.Sleep(120 * time.Millisecond) // 2× past the satisfied deadline
	if srv.closeCount() != 1 {
		t.Fatalf("satisfied read deadline still reaped (closes=%d, err=%v)",
			srv.closeCount(), srv.closeErr())
	}
}
