package reactor

import (
	"sync"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// TestPostAtFiresInDeadlineOrder: timers armed out of order fire sorted by
// instant, on the poll goroutine.
func TestPostAtFiresInDeadlineOrder(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "timer")
	defer r.Stop()

	var mu sync.Mutex
	var order []int
	base := time.Now().Add(20 * time.Millisecond)
	// Arm in scrambled order: 3rd, 1st, 2nd.
	for _, i := range []int{3, 1, 2} {
		i := i
		at := base.Add(time.Duration(i) * 15 * time.Millisecond)
		if _, err := r.PostAt(at, func() {
			if !r.Owns() {
				t.Error("timer callback off the poll goroutine")
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	poll.Until(t, "all timers fired", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

// TestPostAtCancel: a cancelled timer never fires; cancelling twice (or
// after the deadline would have passed) is harmless.
func TestPostAtCancel(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "cancel")
	defer r.Stop()

	fired := make(chan struct{}, 2)
	cancel, err := r.PostAt(time.Now().Add(30*time.Millisecond), func() { fired <- struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // idempotent

	// A later sentinel timer proves the wheel kept turning past the
	// cancelled entry's deadline.
	sentinel := make(chan struct{})
	if _, err := r.PostAt(time.Now().Add(80*time.Millisecond), func() { close(sentinel) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sentinel:
	case <-time.After(5 * time.Second):
		t.Fatal("sentinel timer never fired")
	}
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	default:
	}
}

// TestPostAtPastDeadlineFiresPromptly: an already-expired instant runs on
// the next loop turn instead of waiting a full poll cycle.
func TestPostAtPastDeadlineFiresPromptly(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "past")
	defer r.Stop()

	fired := make(chan struct{})
	if _, err := r.PostAt(time.Now().Add(-time.Second), func() { close(fired) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("past-deadline timer never fired")
	}
}

// TestPostAtReArmsFromCallback: a callback arming the next timer builds a
// poll-confined periodic tick with no extra goroutines.
func TestPostAtReArmsFromCallback(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "tick")
	defer r.Stop()

	done := make(chan struct{})
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks == 3 {
			close(done)
			return
		}
		r.addTimer(time.Now().Add(10*time.Millisecond), tick) // on-loop re-arm
	}
	if _, err := r.PostAt(time.Now().Add(10*time.Millisecond), tick); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("tick chain stalled at %d", ticks)
	}
}

// TestPostAtAfterStop: arming a timer on a stopped reactor fails typed
// instead of silently never firing.
func TestPostAtAfterStop(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "stopped")
	r.Stop()
	if _, err := r.PostAt(time.Now(), func() {}); err != ErrClosed {
		t.Fatalf("PostAt after Stop = %v, want ErrClosed", err)
	}
}

// TestTimerPanicContained: a panicking timer callback is counted and
// recovered; the loop and later timers survive.
func TestTimerPanicContained(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "timerpanic")
	defer r.Stop()

	if _, err := r.PostAt(time.Now(), func() { panic("timer boom") }); err != nil {
		t.Fatal(err)
	}
	after := make(chan struct{})
	if _, err := r.PostAt(time.Now().Add(20*time.Millisecond), func() { close(after) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-after:
	case <-time.After(5 * time.Second):
		t.Fatal("loop died after timer panic")
	}
	if r.Stats().HandlerPanics == 0 {
		t.Fatal("timer panic not counted")
	}
}
