//go:build linux || darwin

// Backpressure tests need a kernel hook (setSndbuf, hooks_linux_test.go /
// hooks_darwin_test.go) to make a send buffer small enough to jam, so they
// are shared across the two poller platforms rather than linux-gated —
// kqueue's EV_CLEAR must honour the same spill/flush contract as EPOLLET.
package reactor

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// TestSendBufferFullBackpressure fills a deliberately tiny kernel send
// buffer while the peer refuses to read: writes must spill into the
// per-connection pending queue instead of blocking, drain on writability
// edges once the peer resumes, and fire OnDrained when the queue empties.
// The client is a plain blocking net.Conn (not reactor-registered) so the
// test controls exactly when the peer reads.
func TestSendBufferFullBackpressure(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "bp")
	defer r.Stop()

	drained := make(chan struct{}, 1)
	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return HandlerFuncs{
			OnDrained: func(c *Conn) {
				select {
				case drained <- struct{}{}:
				default:
				}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-accepted

	// Shrink the server's send buffer so a few tens of KB jams it while the
	// idle client's receive buffer fills.
	if err := setSndbuf(srv.Fd(), 4096); err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("x", 32<<10))
	total := 0
	for i := 0; i < 256 && srv.PendingWrites() == 0; i++ {
		if err := srv.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		total += len(payload)
	}
	if srv.PendingWrites() == 0 {
		t.Fatal("kernel buffers swallowed everything; backpressure never engaged")
	}
	if r.Stats().PartialWrites == 0 {
		t.Fatal("PartialWrites counter not incremented")
	}

	// Resume the reader; the pending queue must drain through writability
	// edges and every byte must arrive intact.
	got := make(chan error, 1)
	go func() {
		_, err := io.CopyN(io.Discard, cli, int64(total))
		got <- err
	}()
	poll.Until(t, "pending queue drained", func() bool { return srv.PendingWrites() == 0 })
	poll.Until(t, "OnDrained fired", func() bool {
		select {
		case <-drained:
			return true
		default:
			return false
		}
	})
	if err := <-got; err != nil {
		t.Fatalf("client read: %v", err)
	}
	if r.Stats().WriteEvents == 0 {
		t.Fatal("no writability edges dispatched")
	}
}

// TestWriteStallDeadlineReapsJammedConn: a peer that accepts the connection
// but never reads jams the send buffer forever. With a write-stall deadline
// armed, the spilled queue's age is bounded — the reactor reaps the
// connection with ErrWriteStall instead of holding the buffered bytes until
// process exit.
func TestWriteStallDeadlineReapsJammedConn(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "stall")
	defer r.Stop()

	var srv collector
	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Clamp the client's receive buffer too: a transient spill that the
	// peer's default (autotuned, possibly multi-MB) window absorbs would
	// drain the queue and reset the stall clock before the deadline fires.
	// The jam has to outlive both kernel buffers.
	if err := cli.(*net.TCPConn).SetReadBuffer(4096); err != nil {
		t.Fatal(err)
	}
	conn := <-accepted
	if err := setSndbuf(conn.Fd(), 4096); err != nil {
		t.Fatal(err)
	}
	conn.SetWriteStallDeadline(50 * time.Millisecond)

	payload := []byte(strings.Repeat("x", 32<<10))
	for i := 0; i < 32; i++ { // 1 MiB total, far past both clamped buffers
		if err := conn.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if conn.PendingWrites() == 0 {
		t.Fatal("kernel buffers swallowed everything; no spill, no stall")
	}

	// The peer never reads: the stall deadline must fire.
	poll.Until(t, "stalled conn reaped", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, ErrWriteStall) || !errors.Is(err, ErrDeadline) {
		t.Fatalf("close err = %v, want ErrWriteStall (wrapping ErrDeadline)", err)
	}
	if r.Stats().DeadlineCloses == 0 {
		t.Fatal("DeadlineCloses counter not incremented")
	}
}

// TestDrainFlushesSpilledWritesBeforeClosing: a drain must not drop bytes
// already accepted into the pending queue — with a peer that resumes
// reading, everything flushes out before the close fires, and nothing is
// force-closed.
func TestDrainFlushesSpilledWritesBeforeClosing(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "drainflush")

	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return HandlerFuncs{}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn := <-accepted
	if err := setSndbuf(conn.Fd(), 4096); err != nil {
		t.Fatal(err)
	}

	payload := []byte(strings.Repeat("y", 32<<10))
	total := 0
	for i := 0; i < 256 && conn.PendingWrites() == 0; i++ {
		if err := conn.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		total += len(payload)
	}
	if conn.PendingWrites() == 0 {
		t.Fatal("kernel buffers swallowed everything; nothing spilled to flush")
	}

	// Reader drains concurrently with the drain: every accepted byte must
	// arrive before the connection closes.
	got := make(chan int64, 1)
	go func() {
		n, _ := io.Copy(io.Discard, cli)
		got <- n
	}()
	r.Drain(30 * time.Second)
	if n := <-got; n != int64(total) {
		t.Fatalf("peer received %d bytes, want %d", n, total)
	}
	if fc := r.Stats().ForceCloses; fc != 0 {
		t.Fatalf("ForceCloses = %d, want 0 (queue was flushable)", fc)
	}
}

// TestDrainForceClosesStragglers: a jammed connection that cannot flush by
// the drain deadline is force-closed (counted) instead of pinning the
// shutdown forever.
func TestDrainForceClosesStragglers(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "drainforce")

	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return HandlerFuncs{}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.(*net.TCPConn).SetReadBuffer(4096); err != nil {
		t.Fatal(err)
	}
	conn := <-accepted
	if err := setSndbuf(conn.Fd(), 4096); err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("z", 32<<10))
	for i := 0; i < 32; i++ { // 1 MiB: far past both clamped kernel buffers
		if err := conn.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if conn.PendingWrites() == 0 {
		t.Fatal("kernel buffers swallowed everything; no straggler to force")
	}

	start := time.Now()
	r.Drain(100 * time.Millisecond) // peer never reads: deadline must fire
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("drain took %v; force-close deadline did not bound it", e)
	}
	if fc := r.Stats().ForceCloses; fc != 1 {
		t.Fatalf("ForceCloses = %d, want 1", fc)
	}
}
