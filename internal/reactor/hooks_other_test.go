//go:build !linux && !darwin

package reactor

import "errors"

func testPipe() (r, w int, err error) { return -1, -1, errors.New("no test pipe") }

func setSndbuf(fd, size int) error { return errors.New("no SO_SNDBUF hook") }
