package reactor

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
	"repro/internal/trace"
)

// newTestReactor skips on platforms without a poller and tears the
// reactor down with the test.
func newTestReactor(t *testing.T, name string) *Reactor {
	t.Helper()
	if !Supported {
		t.Skip("no reactor poller on this platform")
	}
	r, err := New(name, &gid.Registry{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// collector accumulates received bytes and close notifications.
type collector struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed int
	err    error
}

func (cl *collector) handlers() HandlerFuncs {
	return HandlerFuncs{
		OnReadable: func(c *Conn, data []byte) {
			cl.mu.Lock()
			cl.buf.Write(data)
			cl.mu.Unlock()
		},
		OnClose: func(c *Conn, err error) {
			cl.mu.Lock()
			cl.closed++
			cl.err = err
			cl.mu.Unlock()
		},
	}
}

func (cl *collector) String() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.buf.String()
}

func (cl *collector) closeCount() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.closed
}

func (cl *collector) closeErr() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// TestEchoRoundTrip proves the full path: listen, accept, edge-drain read,
// write back, client-side readiness delivery.
func TestEchoRoundTrip(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "echo")
	defer r.Stop()
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{
			OnReadable: func(c *Conn, data []byte) {
				if !r.Owns() {
					t.Error("OnReadable off the poll goroutine")
				}
				c.Write(data) // echo
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	c, err := r.Dial(addr, got.handlers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write([]byte("hello reactor\n")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "echo round trip", func() bool { return got.String() == "hello reactor\n" })
	st := r.Stats()
	if st.Accepted != 1 || st.Dialed != 1 {
		t.Fatalf("Accepted=%d Dialed=%d, want 1/1", st.Accepted, st.Dialed)
	}
	if st.BytesRead == 0 || st.ReadEvents == 0 {
		t.Fatalf("no read activity recorded: %+v", st)
	}
}

// TestPeerEOFFiresOnCloseOnce: closing the client fires the server conn's
// OnClose exactly once with io.EOF.
func TestPeerEOFFiresOnCloseOnce(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "eof")
	defer r.Stop()
	var srv collector
	accepted := make(chan *Conn, 1)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		accepted <- c
		return srv.handlers()
	})
	if err != nil {
		t.Fatal(err)
	}
	var cli collector
	c, err := r.Dial(addr, cli.handlers())
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	c.Close()
	poll.Until(t, "server OnClose", func() bool { return srv.closeCount() == 1 })
	if err := srv.closeErr(); !errors.Is(err, io.EOF) {
		t.Fatalf("server close err = %v, want io.EOF", err)
	}
	poll.Until(t, "client OnClose", func() bool { return cli.closeCount() == 1 })
	if err := cli.closeErr(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("client close err = %v, want ErrConnClosed", err)
	}
	// Settle, then confirm no double fire.
	time.Sleep(10 * time.Millisecond)
	if srv.closeCount() != 1 || cli.closeCount() != 1 {
		t.Fatalf("OnClose fired %d/%d times, want exactly once each",
			srv.closeCount(), cli.closeCount())
	}
}

// TestStopClosesEverything: reactor Stop fires every OnClose with
// ErrClosed and the poll goroutine exits (leakcheck enforces the join).
func TestStopClosesEverything(t *testing.T) {
	defer leakcheck.Check(t)()
	if !Supported {
		t.Skip("no reactor poller on this platform")
	}
	r, err := New("stop", &gid.Registry{})
	if err != nil {
		t.Fatal(err)
	}
	var srv, cli collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs { return srv.handlers() })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Dial(addr, cli.handlers()); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "conn registered", func() bool { return r.Stats().Accepted == 1 })
	r.Stop()
	if got := cli.closeCount(); got != 1 {
		t.Fatalf("client OnClose fired %d times after Stop, want 1", got)
	}
	if err := cli.closeErr(); !errors.Is(err, ErrClosed) {
		t.Fatalf("close err = %v, want ErrClosed", err)
	}
	if err := r.Post(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Post after Stop = %v, want ErrClosed", err)
	}
	// Stop again: must not hang or double-fire.
	r.Stop()
	if got := cli.closeCount(); got != 1 {
		t.Fatalf("OnClose fired %d times after double Stop", got)
	}
}

// TestStopFromCallback: Stop invoked on the poll goroutine itself (from a
// readiness handler) cannot join the goroutine it is running on; it must
// schedule the teardown and return instead of deadlocking.
func TestStopFromCallback(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "selfstop")
	stopReturned := make(chan struct{})
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{
			OnReadable: func(c *Conn, data []byte) {
				r.Stop()
				close(stopReturned)
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var cli collector
	c, err := r.Dial(addr, cli.handlers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stopReturned:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop called from a poll-goroutine callback deadlocked")
	}
	r.Stop() // from outside the loop: joins the finished teardown
	if got := cli.closeCount(); got != 1 {
		t.Fatalf("client OnClose fired %d times, want 1", got)
	}
	if err := cli.closeErr(); !errors.Is(err, ErrClosed) {
		t.Fatalf("close err = %v, want ErrClosed", err)
	}
}

// TestPostStorm hammers the wakeup pipe from many goroutines at once: every
// posted function must run on the poll goroutine, in submission order per
// producer, without wedging the pipe (writes to a full pipe are coalesced).
func TestPostStorm(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "storm")
	defer r.Stop()
	const producers = 8
	const perProducer = 5000
	var ran atomic.Int64
	var offLoop atomic.Int64
	last := make([]int, producers) // poll-goroutine confined
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= perProducer; i++ {
				i := i
				for {
					err := r.Post(func() {
						if !r.Owns() {
							offLoop.Add(1)
						}
						if last[p] >= i {
							offLoop.Add(1) // order violation counts as a failure
						}
						last[p] = i
						ran.Add(1)
					})
					if err == nil {
						break
					}
					t.Errorf("Post: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	poll.Until(t, "all posts ran", func() bool { return ran.Load() == producers*perProducer })
	if offLoop.Load() != 0 {
		t.Fatalf("%d posts ran off the poll goroutine or out of order", offLoop.Load())
	}
	st := r.Stats()
	if st.Posts != producers*perProducer {
		t.Fatalf("Posts = %d, want %d", st.Posts, producers*perProducer)
	}
	if st.Wakeups > st.Posts {
		t.Fatalf("more wakeups (%d) than posts (%d): coalescing broken", st.Wakeups, st.Posts)
	}
}

// TestInterceptorDropAndDelay: the chaos seam suppresses and delays
// readiness dispatches.
func TestInterceptorDropAndDelay(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "chaos")
	defer r.Stop()
	var got collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs { return got.handlers() })
	if err != nil {
		t.Fatal(err)
	}
	var drops atomic.Int64
	r.SetInterceptor(func(event string, fn func()) (func(), bool) {
		if event == "ready" && drops.Add(1) == 1 {
			return nil, false // drop the first readiness event
		}
		return fn, true
	})
	c, err := r.Dial(addr, HandlerFuncs{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "drop recorded", func() bool { return r.Stats().Dropped == 1 })
	// The dropped edge consumed the event; more bytes raise a new edge and
	// deliver everything (the data was never lost, only the dispatch).
	if err := c.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "delivery after drop", func() bool { return got.String() == "ab" })
	r.SetInterceptor(nil)
}

// TestTraceReadinessCausality: handler-side work parents to the "ready"
// span of the readiness event that caused it — the readiness→dispatch→
// handler causal chain the span tree must show.
func TestTraceReadinessCausality(t *testing.T) {
	defer leakcheck.Check(t)()
	buf := trace.NewBuffer(1024)
	defer trace.Use(buf)()
	r := newTestReactor(t, "traced")
	defer r.Stop()
	type rec struct {
		span   trace.SpanID
		parent trace.SpanID
	}
	recs := make(chan rec, 16)
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs {
		return HandlerFuncs{
			OnReadable: func(c *Conn, data []byte) {
				// Model the dispatch a framework performs from a readiness
				// callback: begin a child span; it must parent to "ready".
				sink := trace.ActiveSink()
				parent := trace.Current()
				span := trace.BeginSpan(sink, "recv", "traced", parent)
				trace.EndSpan(sink, span, "recv", "traced")
				recs <- rec{span: span, parent: parent}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Dial(addr, HandlerFuncs{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	var got rec
	select {
	case got = <-recs:
	case <-time.After(5 * time.Second):
		t.Fatal("no readiness dispatch observed")
	}
	if got.parent == 0 {
		t.Fatal("recv span has no parent: readiness span missing")
	}
	// The parent must be a "ready" span on the reactor target.
	foundReady := false
	for _, ev := range buf.Snapshot() {
		if ev.Op == trace.OpSpanBegin && ev.Span == got.parent {
			if ev.Name != "ready" || ev.Target != "traced" {
				t.Fatalf("parent span is %s/%s, want ready/traced", ev.Name, ev.Target)
			}
			foundReady = true
		}
	}
	if !foundReady {
		t.Fatal("ready span not recorded in the trace buffer")
	}
}

// TestShortWritesSplitAcrossEvents: a payload split into many tiny writes
// arrives intact and in order across multiple readiness events.
func TestShortWritesSplitAcrossEvents(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "split")
	defer r.Stop()
	var got collector
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs { return got.handlers() })
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Dial(addr, HandlerFuncs{})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("0123456789", 100)
	for i := 0; i < len(want); i += 7 {
		end := i + 7
		if end > len(want) {
			end = len(want)
		}
		if err := c.Write([]byte(want[i:end])); err != nil {
			t.Fatal(err)
		}
		if i%70 == 0 {
			time.Sleep(time.Millisecond) // force separate readiness events
		}
	}
	poll.Until(t, "all fragments arrived", func() bool { return len(got.String()) == len(want) })
	if got.String() != want {
		t.Fatal("fragmented payload reassembled out of order")
	}
	if r.Stats().ReadEvents < 2 {
		t.Fatalf("expected multiple readiness events, got %d", r.Stats().ReadEvents)
	}
}

// TestConnPostHopsBack: Conn.Post runs its function on the poll goroutine —
// the worker→connection hop.
func TestConnPostHopsBack(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "hop")
	defer r.Stop()
	addr, err := r.Listen("127.0.0.1:0", func(c *Conn) HandlerFuncs { return HandlerFuncs{} })
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Dial(addr, HandlerFuncs{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		c.Post(func() { done <- r.Owns() })
	}()
	select {
	case onLoop := <-done:
		if !onLoop {
			t.Fatal("Conn.Post ran off the poll goroutine")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Conn.Post never ran")
	}
}

// TestRegisterArbitraryFD: the reactor drives non-socket descriptors too
// (the aio submission path uses pipes).
func TestRegisterArbitraryFD(t *testing.T) {
	defer leakcheck.Check(t)()
	r := newTestReactor(t, "fd")
	defer r.Stop()
	rfd, wfd, err := testPipe()
	if err != nil {
		t.Skip("no pipe on this platform:", err)
	}
	var got collector
	if _, err := r.Register(rfd, got.handlers()); err != nil {
		sysClose(rfd)
		sysClose(wfd)
		t.Fatal(err)
	}
	if _, err := sysWrite(wfd, []byte("through the pipe")); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "pipe data delivered", func() bool { return got.String() == "through the pipe" })
	sysClose(wfd)
	poll.Until(t, "EOF close", func() bool { return got.closeCount() == 1 })
	if err := got.closeErr(); !errors.Is(err, io.EOF) {
		t.Fatalf("close err = %v, want io.EOF", err)
	}
}
