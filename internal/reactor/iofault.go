package reactor

import (
	"errors"
	"time"
)

// The IO interceptor is the reactor's fd-level chaos seam: it sits between
// the poll loop's drain routines and the read/write syscalls, so injected
// faults exercise exactly the code paths hostile networks do — short writes
// spill into the pending queue, spurious EAGAIN consumes an edge and stalls
// the connection until more bytes arrive (or a deadline reaps it), and an
// injected reset travels the same error path as a kernel ECONNRESET.

// IOOp identifies which syscall an IO fault decision applies to.
type IOOp int

// The intercepted IO operations.
const (
	IORead IOOp = iota
	IOWrite
)

// String names the op.
func (o IOOp) String() string {
	if o == IOWrite {
		return "write"
	}
	return "read"
}

// IOFault is an injected fd-level failure mode.
type IOFault int

const (
	// IONone performs the operation untouched.
	IONone IOFault = iota
	// IOShort truncates the operation to one byte: a short write spills
	// the remainder into the pending queue; a short read re-enters the
	// drain loop.
	IOShort
	// IOAgain reports EAGAIN without touching the socket. Under
	// edge-triggered registration a swallowed read edge stalls the
	// connection until new bytes arrive — the fault deadlines exist for.
	IOAgain
	// IOReset fails the operation with ErrInjectedReset, modelling a
	// peer reset (ECONNRESET); the connection is torn down.
	IOReset
	// IODelay sleeps the returned duration before performing the
	// operation — injected read latency, stalling the poll loop the way
	// a slow disk or an overloaded host does.
	IODelay
)

// String names the fault.
func (f IOFault) String() string {
	switch f {
	case IONone:
		return "none"
	case IOShort:
		return "short"
	case IOAgain:
		return "again"
	case IOReset:
		return "reset"
	case IODelay:
		return "delay"
	default:
		return "unknown"
	}
}

// IOInterceptor decides a fault for one IO operation on one descriptor.
// The duration is only meaningful for IODelay. chaos.Injector.FDInterceptor
// adapts the seeded rule engine to this seam.
type IOInterceptor func(op IOOp, fd int) (IOFault, time.Duration)

// ErrInjectedReset is the error an IOReset fault fails the operation with.
var ErrInjectedReset = errors.New("reactor: injected connection reset")

// errInjectedAgain makes an IOAgain fault indistinguishable from a kernel
// EAGAIN to the drain loops (isWouldBlock folds it in) without depending
// on syscall errnos in platform-independent code.
var errInjectedAgain = errors.New("reactor: injected EAGAIN")

// SetIOInterceptor installs (or, with nil, removes) the fd-level fault
// seam. Takes effect for subsequent reads and writes on every connection.
func (r *Reactor) SetIOInterceptor(fn IOInterceptor) {
	if fn == nil {
		r.ioInterceptor.Store(nil)
		return
	}
	r.ioInterceptor.Store(&fn)
}

// ioFault consults the interceptor for one operation; IONone when no
// interceptor is installed.
func (r *Reactor) ioFault(op IOOp, fd int) (IOFault, time.Duration) {
	p := r.ioInterceptor.Load()
	if p == nil || *p == nil {
		return IONone, 0
	}
	return (*p)(op, fd)
}

// ioRead is sysRead behind the fault seam.
func (r *Reactor) ioRead(fd int, p []byte) (int, error) {
	switch f, d := r.ioFault(IORead, fd); f {
	case IOAgain:
		return 0, errInjectedAgain
	case IOReset:
		return 0, ErrInjectedReset
	case IODelay:
		time.Sleep(d)
	case IOShort:
		if len(p) > 1 {
			p = p[:1]
		}
	}
	return sysRead(fd, p)
}

// ioWrite is sysWrite behind the fault seam.
func (r *Reactor) ioWrite(fd int, p []byte) (int, error) {
	switch f, d := r.ioFault(IOWrite, fd); f {
	case IOAgain:
		return 0, errInjectedAgain
	case IOReset:
		return 0, ErrInjectedReset
	case IODelay:
		time.Sleep(d)
	case IOShort:
		if len(p) > 1 {
			p = p[:1]
		}
	}
	return sysWrite(fd, p)
}

// isWouldBlock treats an injected EAGAIN exactly like a kernel one.
func isWouldBlock(err error) bool {
	return err == errInjectedAgain || wouldBlock(err)
}
