package reactor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/metrics"
	"repro/internal/supervise"
	"repro/internal/trace"
)

// The supervised reactor closes the gap between panic containment and
// process death: contain() absorbs handler panics, but a bug in the reactor
// itself — or a chaos Kill, which runtime.Goexit's straight past recover —
// takes the poll goroutine down and with it every connection. Supervised
// wraps the reactor in a supervise.Supervisor through the same structural
// hooks the worker pools use (SetCrashHandler / SetPanicHandler /
// FailPending), so a dead poll loop is replaced by a fresh generation under
// the usual restart budget and backoff. Listening sockets are owned here,
// not by any one generation: each restart re-registers the surviving fds via
// ListenFD, so accepted service resumes on the same address with no
// close/bind window. In-flight connections do not survive — their fds died
// with the poller — but they fail fast with ErrPollCrash instead of hanging,
// and a supervise.Watchdog watching the target reports the outage.

// supListener is one listening socket owned by the Supervised wrapper and
// lent to each reactor generation.
type supListener struct {
	fd       int
	addr     string
	onAccept func(*Conn) HandlerFuncs
}

// Supervised is a reactor that survives its own poll loop. It exposes the
// serving surface of a Reactor (Listen, Drain, Stop, Stats, the chaos
// seams) and delegates lifecycle to a supervise.Supervisor: poll-goroutine
// deaths and panic storms (past supervise.Options.PanicThreshold) replace
// the reactor with a new generation; once the restart budget is exhausted
// the target is Failed and stays down.
type Supervised struct {
	name  string
	reg   *gid.Registry
	ropts Options
	sup   *supervise.Supervisor

	mu        sync.Mutex
	cur       *Reactor
	listeners []*supListener
	icpt      Interceptor
	ioIcpt    IOInterceptor
	closed    bool
}

// NewSupervised builds generation 0 of a supervised reactor. ropts applies
// to every generation (survivability counters accumulate across restarts);
// sopts tunes the restart policy — set sopts.PanicThreshold to restart on
// handler-panic storms, leave it 0 to rely on containment alone.
func NewSupervised(name string, reg *gid.Registry, ropts Options, sopts supervise.Options) (*Supervised, error) {
	if ropts.Stats == nil {
		ropts.Stats = metrics.NewReactorStats()
	}
	s := &Supervised{name: name, reg: reg, ropts: ropts}
	sup, err := supervise.New(name, s.spawn, sopts)
	if err != nil {
		return nil, err
	}
	s.sup = sup
	return s, nil
}

// spawn is the supervise.Factory: it builds one reactor generation,
// re-applies the chaos seams, and re-registers every surviving listener.
// Generation 0 runs synchronously inside NewSupervised; later generations
// run on the supervisor loop after a crash.
func (s *Supervised) spawn(gen int) (executor.Executor, error) {
	r, err := NewWithOptions(s.name, s.reg, s.ropts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		r.Stop()
		return nil, ErrClosed
	}
	s.cur = r
	icpt, ioIcpt := s.icpt, s.ioIcpt
	lns := append([]*supListener(nil), s.listeners...)
	s.mu.Unlock()
	if icpt != nil {
		r.SetInterceptor(icpt)
	}
	if ioIcpt != nil {
		r.SetIOInterceptor(ioIcpt)
	}
	for _, ln := range lns {
		if err := r.ListenFD(ln.fd, ln.onAccept); err != nil {
			r.Stop()
			return nil, fmt.Errorf("reactor: re-register listener %s: %w", ln.addr, err)
		}
	}
	if gen > 0 {
		if sink := trace.ActiveSink(); sink != nil {
			sink.Record(trace.Event{Time: time.Now(), Op: trace.OpReactorRestart, Target: s.name})
		}
	}
	return newReactorExec(r), nil
}

// Listen binds a listening socket the Supervised wrapper owns and registers
// it with the current generation. The socket survives restarts: each new
// generation re-registers it, so the bound address keeps serving across
// poll-loop deaths. If the current generation is already gone (a restart in
// flight), the listener still attaches to the next one.
func (s *Supervised) Listen(addr string, onAccept func(*Conn) HandlerFuncs) (string, error) {
	fd, bound, err := sysListen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sysClose(fd)
		return "", ErrClosed
	}
	s.listeners = append(s.listeners, &supListener{fd: fd, addr: bound, onAccept: onAccept})
	r := s.cur
	s.mu.Unlock()
	if err := r.ListenFD(fd, onAccept); err != nil && !errors.Is(err, ErrClosed) {
		s.mu.Lock()
		for i, ln := range s.listeners {
			if ln.fd == fd {
				s.listeners = append(s.listeners[:i], s.listeners[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		sysClose(fd)
		return "", err
	}
	return bound, nil
}

// current returns the live generation (nil only before generation 0 exists,
// which no caller can observe).
func (s *Supervised) current() *Reactor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Current exposes the live generation for inspection (tests, per-connection
// tuning). The pointer goes stale at the next restart.
func (s *Supervised) Current() *Reactor { return s.current() }

// Stats snapshots the current generation's counters. The survivability
// counters (panics, deadline closes, crashes, …) accumulate across
// generations; the traffic counters reset with each restart.
func (s *Supervised) Stats() Stats {
	r := s.current()
	if r == nil {
		return Stats{}
	}
	return r.Stats()
}

// RStats returns the live survivability counters, shared by every
// generation.
func (s *Supervised) RStats() *metrics.ReactorStats { return s.ropts.Stats }

// SetInterceptor installs the readiness chaos seam on the current and all
// future generations.
func (s *Supervised) SetInterceptor(fn Interceptor) {
	s.mu.Lock()
	s.icpt = fn
	r := s.cur
	s.mu.Unlock()
	if r != nil {
		r.SetInterceptor(fn)
	}
}

// SetIOInterceptor installs the fd-level fault seam on the current and all
// future generations.
func (s *Supervised) SetIOInterceptor(fn IOInterceptor) {
	s.mu.Lock()
	s.ioIcpt = fn
	r := s.cur
	s.mu.Unlock()
	if r != nil {
		r.SetIOInterceptor(fn)
	}
}

// Drain gracefully stops the current generation (flush-before-close with
// deadline d, exactly like Reactor.Drain) and then shuts supervision down —
// a drained reactor must not be "helpfully" restarted.
func (s *Supervised) Drain(d time.Duration) {
	r := s.current()
	if r != nil {
		r.Drain(d)
	}
	s.Stop()
}

// Stop shuts supervision down, stops the current generation, and closes the
// wrapper-owned listening sockets. Safe to call more than once.
func (s *Supervised) Stop() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	s.sup.Shutdown()
	if alreadyClosed {
		return
	}
	for _, ln := range lns {
		sysClose(ln.fd)
	}
}

// Health reports the supervision state (generation, restart budget, status).
func (s *Supervised) Health() supervise.TargetHealth { return s.sup.Health() }

// Supervisor exposes the underlying supervisor — register it with a
// supervise.Watchdog to get heartbeat liveness on top of restart health.
func (s *Supervised) Supervisor() *supervise.Supervisor { return s.sup }

// --- executor adapter -------------------------------------------------------

// reactorExec adapts a Reactor to executor.Executor so the supervision
// machinery (Supervisor restarts, Watchdog heartbeats) can treat the poll
// loop like any worker pool. Completions for posted fns are tracked here;
// FailPending fails the ones the dead loop will never run.
type reactorExec struct {
	r *Reactor

	mu      sync.Mutex
	pending map[*executor.Completion]func(error)
}

func newReactorExec(r *Reactor) *reactorExec {
	return &reactorExec{r: r, pending: make(map[*executor.Completion]func(error))}
}

// AsExecutor adapts the reactor to the executor.Executor surface, which is
// how an *unsupervised* reactor gets liveness coverage: register the result
// with a supervise.Watchdog and heartbeat probes flow through Post. After a
// crash or Stop the probes fail with an error wrapping
// supervise.ErrTargetDown, so the watchdog grades the target down — detected
// but not restarted, the contrast the supervised variant exists for.
func (r *Reactor) AsExecutor() executor.Executor { return newReactorExec(r) }

// Name implements executor.Executor.
func (x *reactorExec) Name() string { return x.r.Name() }

// Post submits fn to the poll goroutine. A rejection (the reactor is
// stopped or crashed) completes the returned Completion immediately with an
// error wrapping supervise.ErrTargetDown. A panic in fn completes it with
// *executor.PanicError, counted like a handler panic.
func (x *reactorExec) Post(fn func()) *executor.Completion {
	c, finish := executor.NewPendingCompletion()
	x.mu.Lock()
	x.pending[c] = finish
	x.mu.Unlock()
	err := x.r.Post(func() {
		perr := executor.RunCaptured(fn)
		if perr != nil {
			x.r.rstats.HandlerPanics.Inc()
			if h := x.r.panicHandler.Load(); h != nil {
				var pe *executor.PanicError
				if errors.As(perr, &pe) {
					(*h)(pe.Value)
				} else {
					(*h)(perr)
				}
			}
		}
		x.settle(c, perr)
	})
	if err != nil {
		x.settle(c, fmt.Errorf("reactor: post: %v: %w", err, supervise.ErrTargetDown))
	}
	return c
}

// settle completes c exactly once: whichever caller removes it from the
// tracking map performs the completion.
func (x *reactorExec) settle(c *executor.Completion, err error) {
	x.mu.Lock()
	finish, ok := x.pending[c]
	delete(x.pending, c)
	x.mu.Unlock()
	if ok {
		finish(err)
	}
}

// FailPending completes every tracked, unfinished Completion with err —
// called by the supervisor when replacing a crashed generation so waiters
// fail fast instead of hanging on a loop that no longer exists.
func (x *reactorExec) FailPending(err error) int {
	x.mu.Lock()
	fins := make([]func(error), 0, len(x.pending))
	for c, fin := range x.pending {
		delete(x.pending, c)
		fins = append(fins, fin)
	}
	x.mu.Unlock()
	for _, fin := range fins {
		fin(err)
	}
	return len(fins)
}

// Owns implements executor.Executor.
func (x *reactorExec) Owns() bool { return x.r.Owns() }

// TryRunPending implements executor.Executor. The reactor has no helping
// protocol — posted fns are poll-goroutine-confined by design.
func (x *reactorExec) TryRunPending() bool { return false }

// Shutdown implements executor.Executor: stop the reactor and fail whatever
// it never got to.
func (x *reactorExec) Shutdown() {
	x.r.Stop()
	x.FailPending(executor.ErrShutdown)
}

// SetCrashHandler forwards the supervisor's crash hook to the reactor.
func (x *reactorExec) SetCrashHandler(fn func(any)) { x.r.SetCrashHandler(fn) }

// SetPanicHandler forwards the supervisor's panic hook to the reactor.
func (x *reactorExec) SetPanicHandler(fn func(any)) { x.r.SetPanicHandler(fn) }

var _ executor.Executor = (*reactorExec)(nil)
