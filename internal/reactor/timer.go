package reactor

import (
	"container/heap"
	"sync/atomic"
	"time"
)

// The reactor's timers are poll-goroutine state: a min-heap ordered by fire
// time whose head sets the poll wait's timeout, so deadlines cost zero extra
// goroutines — the same thread that dispatches readiness dispatches time.
// Cancellation is a flag, not a heap fixup: a cancelled entry is skipped
// when it surfaces, which keeps cancel safe from any goroutine without
// locking the heap.

// timerEntry is one scheduled callback. when and seq are written on the
// poll goroutine before the entry enters the heap; cancelled may be set
// from any goroutine.
type timerEntry struct {
	when      time.Time
	seq       uint64 // insertion order breaks ties for deterministic firing
	fn        func()
	cancelled atomic.Bool
}

// timerHeap is a min-heap of timer entries by fire time (container/heap).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}

func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*timerEntry)) }

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// addTimer schedules fn at `at`. Poll-goroutine only.
func (r *Reactor) addTimer(at time.Time, fn func()) *timerEntry {
	e := &timerEntry{when: at, seq: r.timerSeq, fn: fn}
	r.timerSeq++
	heap.Push(&r.timers, e)
	return e
}

// nextTimerMs returns the poll wait timeout in milliseconds: -1 with no
// armed timers (block indefinitely), otherwise the time to the earliest
// live entry, rounded up so a timer never fires early. Cancelled heads are
// discarded here so a storm of cancellations cannot pin the timeout at 0.
// Poll-goroutine only.
func (r *Reactor) nextTimerMs() int {
	for len(r.timers) > 0 && r.timers[0].cancelled.Load() {
		heap.Pop(&r.timers)
	}
	if len(r.timers) == 0 {
		return -1
	}
	d := time.Until(r.timers[0].when)
	if d <= 0 {
		return 0
	}
	return int((d + time.Millisecond - 1) / time.Millisecond)
}

// fireTimers runs every due, uncancelled timer. Callbacks run contained
// (a panic in one closes nothing but is counted and recovered) and may
// re-arm timers; entries they add for a past instant fire in this same
// sweep. Poll-goroutine only.
func (r *Reactor) fireTimers() {
	r.san.Check("fireTimers on " + r.name)
	now := time.Now()
	for len(r.timers) > 0 {
		top := r.timers[0]
		if top.cancelled.Load() {
			heap.Pop(&r.timers)
			continue
		}
		if top.when.After(now) {
			return
		}
		heap.Pop(&r.timers)
		r.contain(nil, top.fn)
	}
}

// PostAt schedules fn to run on the poll goroutine at `at` (immediately if
// `at` has passed). It returns a cancel function — safe from any goroutine,
// a no-op once fn has started — and ErrClosed after Stop. Like every
// reactor callback, fn must not block; it may arm further timers.
func (r *Reactor) PostAt(at time.Time, fn func()) (cancel func(), err error) {
	e := &timerEntry{when: at, fn: fn}
	arm := func() {
		e.seq = r.timerSeq
		r.timerSeq++
		heap.Push(&r.timers, e)
	}
	if r.Owns() {
		arm()
	} else if err := r.Post(arm); err != nil {
		return nil, err
	}
	return func() { e.cancelled.Store(true) }, nil
}
