//go:build darwin

package reactor

import "syscall"

// testPipe opens a non-blocking pipe for arbitrary-FD registration tests.
func testPipe() (r, w int, err error) {
	var p [2]int
	if err := syscall.Pipe(p[:]); err != nil {
		return -1, -1, err
	}
	syscall.SetNonblock(p[0], true)
	syscall.SetNonblock(p[1], true)
	syscall.CloseOnExec(p[0])
	syscall.CloseOnExec(p[1])
	return p[0], p[1], nil
}

// setSndbuf shrinks a socket's kernel send buffer to force partial writes.
func setSndbuf(fd, size int) error {
	return syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_SNDBUF, size)
}
