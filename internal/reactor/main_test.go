package reactor

import (
	"os"
	"testing"

	"repro/internal/testutil/leakcheck"
)

// TestMain sweeps the whole suite for leaked goroutines: the reactor is
// one long-lived poll goroutine per instance, so every Stop must join it.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
