package reactor

// pollEvent is one readiness report from the platform poller.
type pollEvent struct {
	fd       int
	readable bool
	writable bool
	hup      bool // peer hung up / error condition on the descriptor
}

// poller abstracts the platform readiness facility (epoll on linux,
// kqueue on darwin). All registrations are edge-triggered: an event is
// reported once per edge and the caller must drain to EAGAIN.
//
// add/mod/del/wake are safe from any goroutine (the kernel serializes
// them); wait is called only by the poll goroutine.
type poller interface {
	// add registers fd for readability edges, plus writability when w.
	add(fd int, w bool) error
	// mod updates fd's writability interest.
	mod(fd int, w bool) error
	// del removes fd.
	del(fd int) error
	// wait blocks for events, filling evs, for at most timeoutMs
	// milliseconds (-1 blocks indefinitely; 0 polls). A timer-driven
	// return reports n == 0. woken reports a wake() call (the wakeup
	// channel is drained internally). A non-nil error means the poller is
	// closed and the loop must exit.
	wait(evs []pollEvent, timeoutMs int) (n int, woken bool, err error)
	// wake interrupts a concurrent wait once.
	wake()
	// close releases the poller's descriptors.
	close()
}
