// Package reactor is the readiness-driven dispatch core under the
// networking layers: an edge-triggered epoll (linux) / kqueue (darwin) poll
// loop that turns file-descriptor readiness into handler invocations on a
// single confined goroutine — the libevent archetype the paper positions
// EDT-style runtimes against, implemented as a first-class layer of this
// runtime instead of being imitated on top of goroutine-per-connection
// net I/O.
//
// Shape of the machine:
//
//   - one poll goroutine owns every registered descriptor; it blocks in
//     epoll_wait/kevent and never anywhere else;
//   - registration is edge-triggered: each readiness event is drained to
//     EAGAIN (reads into a single shared scratch buffer, writes out of the
//     per-connection pending queue), so an edge is never lost;
//   - a wakeup pipe lets any goroutine Post work onto the poll goroutine —
//     the cross-thread ingress every single-threaded event loop needs;
//   - each connection is a *virtual target bound to an FD*: its callbacks
//     (HandlerFuncs) are confined to the poll goroutine exactly as EDT
//     handlers are confined to the event-dispatch thread, so connection
//     state needs no locks; Conn.Post hops back onto that context from
//     anywhere, and from a callback the usual directives offload to worker
//     targets and hop back;
//   - Conn.Write is safe from any goroutine: it writes straight to the
//     socket while the kernel buffer has room and spills the remainder into
//     a per-connection pending queue that the poll loop drains on the next
//     writability edge (backpressure becomes memory, never a blocked
//     goroutine).
//
// The hot path allocates nothing per event: readiness events land in a
// reused event array, reads go through one scratch buffer, and callbacks
// are pre-bound at registration. Only payload copies (and spans, when
// tracing is on) allocate.
//
// Cross-cutting integration mirrors the rest of the runtime: an
// Interceptor seam compatible with chaos.NetInterceptor injects Delay/Drop
// faults at the readiness layer, trace spans parent handler work to the
// readiness event that caused it ("ready" → "recv" → "run"), and callers
// apply qos admission per message (see netloop) — on a reactor, a Block
// policy backpressures the whole loop, which is kernel-style global
// backpressure: every socket stops being read and TCP receive windows fill.
//
// The survivability layer hardens the loop against hostile peers and
// crashing handlers:
//
//   - a poll-confined timer heap (timer.go) backs Reactor.PostAt and the
//     per-connection deadlines (SetIdleDeadline, SetReadDeadline,
//     SetWriteStallDeadline) that reap slowloris connections — zero extra
//     goroutines, the poll wait's timeout is the earliest armed timer;
//   - handler panics are contained: the dispatch is recovered, the
//     offending connection is closed with a HandlerPanicError, and the
//     loop keeps serving every other descriptor (counted by a
//     metrics.ReactorStats). A death the recover cannot catch (a killed
//     goroutine, a panic in reactor internals) tears every connection
//     down with ErrPollCrash and notifies the crash handler — the hook a
//     supervise.Supervisor restarts through (see Supervised);
//   - Options.MaxConns is the accept-gate admission cap: accepts beyond
//     it are closed immediately, bounding descriptor usage before any
//     handler runs (message-level shedding stays in qos);
//   - Drain is the graceful half of Stop: accepting stops, spilled writes
//     flush through the usual writability edges, idle connections close,
//     and a deadline force-closes stragglers before the loop exits.
//
// Platforms without a poller (anything but linux/darwin) compile against
// the same API; New returns ErrUnsupported and callers fall back to the
// portable goroutine-per-connection transport (netloop's default).
package reactor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gid"
	"repro/internal/metrics"
	"repro/internal/sanitize"
	"repro/internal/trace"
)

// ErrUnsupported is returned by New on platforms without an epoll/kqueue
// poller. Gate reactor use on Supported.
var ErrUnsupported = errors.New("reactor: no poller on this platform")

// ErrClosed is returned by operations on a stopped reactor.
var ErrClosed = errors.New("reactor: stopped")

// ErrConnClosed is returned by writes to a closed connection.
var ErrConnClosed = errors.New("reactor: connection closed")

// ErrDeadline is the base error of every deadline close; match it with
// errors.Is to treat all three kinds alike.
var ErrDeadline = errors.New("reactor: deadline exceeded")

var (
	// ErrIdleTimeout closes a connection with no read or successful write
	// activity for its idle deadline (the slowloris reaper).
	ErrIdleTimeout = fmt.Errorf("%w: idle timeout", ErrDeadline)
	// ErrReadTimeout closes a connection whose armed read deadline passed
	// before any bytes arrived.
	ErrReadTimeout = fmt.Errorf("%w: read timeout", ErrDeadline)
	// ErrWriteStall closes a connection whose spilled writes made no
	// progress to empty for its write-stall deadline (the peer stopped
	// reading).
	ErrWriteStall = fmt.Errorf("%w: write stalled", ErrDeadline)
)

// ErrPollCrash is the OnClose error of connections orphaned by a poll-
// goroutine death (an unrecovered panic or a killed goroutine).
var ErrPollCrash = errors.New("reactor: poll loop crashed")

// HandlerPanicError is the OnClose error of a connection whose handler
// panicked: the panic was contained, the connection was closed, the loop
// survived.
type HandlerPanicError struct {
	Value any // the recovered panic value
}

// Error formats the contained panic.
func (e *HandlerPanicError) Error() string {
	return fmt.Sprintf("reactor: handler panic: %v", e.Value)
}

// HandlerFuncs are one connection's readiness callbacks. Every callback
// runs on the poll goroutine — the reactor's EDT-confined context: never
// block in one (ompvet's blockguard pass enforces this); offload to a
// worker target and hop back with Conn.Post instead.
type HandlerFuncs struct {
	// OnReadable delivers freshly read bytes. data is only valid for the
	// duration of the call (it aliases the shared scratch buffer); copy
	// what must outlive it.
	OnReadable func(c *Conn, data []byte)
	// OnDrained fires when a previously spilled write queue empties — the
	// moment backpressure released.
	OnDrained func(c *Conn)
	// OnClose fires exactly once when the connection leaves the reactor:
	// peer EOF (err == io.EOF), a socket error, Conn.Close, or reactor
	// shutdown (err == ErrClosed).
	OnClose func(c *Conn, err error)
}

// Interceptor sits between a readiness event and its handler dispatch,
// same shape as netloop.Interceptor so chaos.NetInterceptor plugs into
// both: it may replace the dispatch (Delay) or suppress it (keep=false;
// with edge-triggered registration a dropped read edge stalls the
// connection until more bytes arrive — exactly the fault being modelled).
type Interceptor func(event string, fn func()) (func(), bool)

// Stats is a snapshot of the reactor's counters.
type Stats struct {
	Conns         int   // currently registered connections
	Accepted      int64 // connections accepted by listeners
	Dialed        int64 // connections established by Dial
	ReadEvents    int64 // readability edges dispatched
	WriteEvents   int64 // writability edges dispatched
	BytesRead     int64
	BytesWritten  int64
	PartialWrites int64 // writes that spilled into a pending queue
	Posts         int64 // cross-thread Post/Conn.Post functions run
	Wakeups       int64 // wakeup-pipe interrupts of the poll wait
	Dropped       int64 // events suppressed by the interceptor

	// Survivability counters, mirrored from the ReactorStats (which may be
	// shared across supervised generations — these are its live values).
	HandlerPanics  int64 // panics contained around handler dispatch
	DeadlineCloses int64 // connections reaped by idle/read/write-stall deadlines
	AcceptRejects  int64 // accepts shed by the MaxConns cap
	LoopCrashes    int64 // poll-goroutine deaths
	ForceCloses    int64 // stragglers closed at a drain deadline
}

// Options tunes a reactor built with NewWithOptions. The zero value matches
// New.
type Options struct {
	// MaxConns caps registered connections: accepted sockets beyond the
	// cap are closed immediately (counted by AcceptRejects) before any
	// handler sees them. 0 means unlimited. The cap counts accepted,
	// dialed, and Register-ed descriptors alike.
	MaxConns int
	// Stats receives the survivability counters; nil allocates a fresh
	// set. A supervised reactor passes one instance to every generation
	// so counts survive restarts.
	Stats *metrics.ReactorStats
}

// Reactor is an edge-triggered readiness dispatcher. Create with New,
// tear down with Stop.
type Reactor struct {
	name     string
	registry *gid.Registry
	p        poller
	opts     Options
	rstats   *metrics.ReactorStats
	// san stamps the poll goroutine as this reactor's home context (bound
	// in run); the poll-confined paths — read drains, timer fires,
	// connection teardown — assert affinity against it under -tags=ompsan.
	// Each supervised generation is a fresh Reactor with a fresh stamp.
	// No-op untagged.
	san sanitize.Home

	mu        sync.Mutex
	conns     map[int]*Conn
	listeners map[int]*listener
	posted    []func()
	closed    bool
	draining  bool

	wakePending   atomic.Bool
	interceptor   atomic.Pointer[Interceptor]
	ioInterceptor atomic.Pointer[IOInterceptor]
	panicHandler  atomic.Pointer[func(any)]
	crashHandler  atomic.Pointer[func(any)]

	accepted      atomic.Int64
	dialed        atomic.Int64
	readEvents    atomic.Int64
	writeEvents   atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	partialWrites atomic.Int64
	posts         atomic.Int64
	wakeups       atomic.Int64
	dropped       atomic.Int64

	readBuf  []byte // poll-goroutine-only scratch
	events   []pollEvent
	targets  []batchTarget // poll-goroutine-only scratch (see pollLoop)
	timers   timerHeap     // poll-goroutine-only (timer.go)
	timerSeq uint64        // poll-goroutine-only
	wg       sync.WaitGroup
	ready    chan struct{}
}

// batchTarget pins one readiness event to the registration it was
// generated for, resolved before any event in the batch is dispatched.
type batchTarget struct {
	ln *listener
	c  *Conn
}

type listener struct {
	fd       int
	onAccept func(*Conn) HandlerFuncs
	external bool // fd owned by the caller: deregister on teardown, never close
}

// New creates a reactor named name whose poll goroutine registers itself
// in reg (nil means gid.Default) and starts it. On platforms without a
// poller it returns ErrUnsupported.
func New(name string, reg *gid.Registry) (*Reactor, error) {
	return NewWithOptions(name, reg, Options{})
}

// NewWithOptions is New with survivability tuning (admission cap, shared
// stats).
func NewWithOptions(name string, reg *gid.Registry, opts Options) (*Reactor, error) {
	if reg == nil {
		reg = &gid.Default
	}
	p, err := newPoller()
	if err != nil {
		return nil, err
	}
	if opts.Stats == nil {
		opts.Stats = metrics.NewReactorStats()
	}
	r := &Reactor{
		name:      name,
		registry:  reg,
		p:         p,
		opts:      opts,
		rstats:    opts.Stats,
		conns:     make(map[int]*Conn),
		listeners: make(map[int]*listener),
		readBuf:   make([]byte, 64<<10),
		events:    make([]pollEvent, 256),
		ready:     make(chan struct{}),
	}
	r.wg.Add(1)
	go r.run()
	<-r.ready
	return r, nil
}

// Name returns the reactor's virtual-target name.
func (r *Reactor) Name() string { return r.name }

// Owns reports whether the calling goroutine is the poll goroutine.
func (r *Reactor) Owns() bool { return r.registry.IsOwnedBy(r) }

// SetInterceptor installs (or, with nil, removes) the readiness
// interceptor — the chaos seam.
func (r *Reactor) SetInterceptor(fn Interceptor) {
	if fn == nil {
		r.interceptor.Store(nil)
		return
	}
	r.interceptor.Store(&fn)
}

// intercept applies the installed interceptor, defaulting to pass-through.
func (r *Reactor) intercept(event string, fn func()) (func(), bool) {
	p := r.interceptor.Load()
	if p == nil || *p == nil {
		return fn, true
	}
	return (*p)(event, fn)
}

// Stats returns a snapshot of the reactor's counters.
func (r *Reactor) Stats() Stats {
	r.mu.Lock()
	conns := len(r.conns)
	r.mu.Unlock()
	return Stats{
		Conns:         conns,
		Accepted:      r.accepted.Load(),
		Dialed:        r.dialed.Load(),
		ReadEvents:    r.readEvents.Load(),
		WriteEvents:   r.writeEvents.Load(),
		BytesRead:     r.bytesRead.Load(),
		BytesWritten:  r.bytesWritten.Load(),
		PartialWrites: r.partialWrites.Load(),
		Posts:         r.posts.Load(),
		Wakeups:       r.wakeups.Load(),
		Dropped:       r.dropped.Load(),

		HandlerPanics:  r.rstats.HandlerPanics.Value(),
		DeadlineCloses: r.rstats.DeadlineCloses.Value(),
		AcceptRejects:  r.rstats.AcceptRejects.Value(),
		LoopCrashes:    r.rstats.LoopCrashes.Value(),
		ForceCloses:    r.rstats.ForceCloses.Value(),
	}
}

// RStats returns the live survivability counters (shared across generations
// when the reactor is supervised).
func (r *Reactor) RStats() *metrics.ReactorStats { return r.rstats }

// SetPanicHandler installs a hook called with each contained handler-panic
// value (after the offending connection is closed). The supervision layer
// uses it to count panic storms toward a restart threshold. The handler
// runs on the poll goroutine; keep it non-blocking.
func (r *Reactor) SetPanicHandler(fn func(any)) {
	if fn == nil {
		r.panicHandler.Store(nil)
		return
	}
	r.panicHandler.Store(&fn)
}

// SetCrashHandler installs a hook called when the poll goroutine dies (an
// unrecovered panic or a killed goroutine), after every connection has been
// failed with ErrPollCrash. The value is the panic payload, or nil for a
// plain goroutine death. It runs on the dying goroutine; keep it
// non-blocking (a supervisor enqueues the restart and returns).
func (r *Reactor) SetCrashHandler(fn func(any)) {
	if fn == nil {
		r.crashHandler.Store(nil)
		return
	}
	r.crashHandler.Store(&fn)
}

// contain runs fn with panic containment: a panic is recovered, counted,
// reported to the panic handler, and — when the fault belongs to a
// connection — answered by closing that connection with a
// HandlerPanicError. The poll loop itself keeps running. Poll-goroutine
// only.
func (r *Reactor) contain(c *Conn, fn func()) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		r.rstats.HandlerPanics.Inc()
		if c != nil && !c.dead() {
			r.closeConn(c, &HandlerPanicError{Value: v})
		}
		if h := r.panicHandler.Load(); h != nil {
			(*h)(v)
		}
	}()
	fn()
}

// Post runs fn on the poll goroutine — the cross-thread ingress. Returns
// ErrClosed after Stop. Posts from the poll goroutine itself are also
// queued (they run after the current event batch), preserving FIFO order
// with posts from other goroutines.
func (r *Reactor) Post(fn func()) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.posted = append(r.posted, fn)
	r.mu.Unlock()
	r.wake()
	return nil
}

// wake interrupts the poll wait once; coalesces with pending wakeups.
func (r *Reactor) wake() {
	if r.wakePending.CompareAndSwap(false, true) {
		r.p.wake()
	}
}

// Listen binds a listening socket on addr ("127.0.0.1:0" for an ephemeral
// port), registers it, and returns the bound address. Each accepted
// connection is wrapped in a Conn and onAccept (poll goroutine) returns
// its callbacks.
func (r *Reactor) Listen(addr string, onAccept func(*Conn) HandlerFuncs) (string, error) {
	fd, bound, err := sysListen(addr)
	if err != nil {
		return "", err
	}
	if err := r.addListener(&listener{fd: fd, onAccept: onAccept}); err != nil {
		sysClose(fd)
		return "", err
	}
	return bound, nil
}

// ListenFD registers an externally-owned listening descriptor: the reactor
// polls and accepts on it, but teardown (Stop, Drain, a crash) only
// deregisters it — the caller keeps the fd and may re-register it with a
// replacement reactor. This is how a supervised reactor's listeners survive
// poll-loop restarts without an EADDRINUSE window. Registering an fd the
// reactor already polls is a no-op.
func (r *Reactor) ListenFD(fd int, onAccept func(*Conn) HandlerFuncs) error {
	if err := sysSetNonblock(fd); err != nil {
		return fmt.Errorf("reactor: set nonblocking: %w", err)
	}
	return r.addListener(&listener{fd: fd, onAccept: onAccept, external: true})
}

func (r *Reactor) addListener(ln *listener) error {
	r.mu.Lock()
	if r.closed || r.draining {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, ok := r.listeners[ln.fd]; ok {
		r.mu.Unlock()
		return nil
	}
	r.listeners[ln.fd] = ln
	r.mu.Unlock()
	if err := r.p.add(ln.fd, false); err != nil {
		r.mu.Lock()
		delete(r.listeners, ln.fd)
		r.mu.Unlock()
		return fmt.Errorf("reactor: register listener: %w", err)
	}
	return nil
}

// Dial connects to addr (blocking connect, then non-blocking registration)
// and registers the connection with h.
func (r *Reactor) Dial(addr string, h HandlerFuncs) (*Conn, error) {
	fd, err := sysDial(addr)
	if err != nil {
		return nil, err
	}
	c, err := r.Register(fd, h)
	if err != nil {
		sysClose(fd)
		return nil, err
	}
	r.dialed.Add(1)
	return c, nil
}

// Register places an already-open descriptor (socket, pipe, ...) under the
// reactor. The descriptor is set non-blocking and the reactor takes
// ownership: it will be closed when the connection leaves the reactor.
func (r *Reactor) Register(fd int, h HandlerFuncs) (*Conn, error) {
	if err := sysSetNonblock(fd); err != nil {
		return nil, fmt.Errorf("reactor: set nonblocking: %w", err)
	}
	c := &Conn{r: r, fd: fd, h: h}
	r.mu.Lock()
	if r.closed || r.draining {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.opts.MaxConns > 0 && len(r.conns) >= r.opts.MaxConns {
		r.mu.Unlock()
		r.rstats.AcceptRejects.Inc()
		return nil, fmt.Errorf("reactor: register fd %d: connection cap (%d) reached", fd, r.opts.MaxConns)
	}
	r.conns[fd] = c
	r.mu.Unlock()
	if err := r.p.add(fd, false); err != nil {
		r.mu.Lock()
		delete(r.conns, fd)
		r.mu.Unlock()
		return nil, fmt.Errorf("reactor: register fd %d: %w", fd, err)
	}
	return c, nil
}

// run is the poll loop: wait for readiness, dispatch edges, drain posts.
// The poller is closed here, on the way out, so Stop never has to touch it
// while the loop might still be waiting on it.
//
// Handler panics never reach this frame (contain recovers them at each
// dispatch point), so anything that does — a panic in reactor internals,
// or a goroutine kill, which runs deferred functions without a panic value
// — is a loop death: crashCleanup fails every connection with ErrPollCrash
// and notifies the crash handler so a supervisor can build a replacement.
func (r *Reactor) run() {
	cleanExit := false
	defer func() {
		if v := recover(); v != nil || !cleanExit {
			r.crashCleanup(v)
		}
		r.p.close()
		r.san.Unbind()
		r.registry.Deregister()
		r.wg.Done()
	}()
	r.registry.Register(r)
	r.san.Bind("reactor", r.name)
	close(r.ready)
	pprof.Do(context.Background(), pprof.Labels("target", r.name), func(context.Context) {
		r.pollLoop()
	})
	cleanExit = true
}

// crashCleanup tears the reactor down after a poll-goroutine death: mark
// closed, fail every connection with ErrPollCrash, drop queued posts, and
// notify the crash handler last so a supervisor observes a fully-dead
// reactor. Runs on the dying goroutine (inside its deferred frame), so the
// poll-confined teardown invariants still hold.
func (r *Reactor) crashCleanup(v any) {
	r.rstats.LoopCrashes.Inc()
	r.mu.Lock()
	r.closed = true
	r.posted = nil
	lns := make([]*listener, 0, len(r.listeners))
	for _, ln := range r.listeners {
		lns = append(lns, ln)
	}
	r.listeners = map[int]*listener{}
	conns := make([]*Conn, 0, len(r.conns))
	for _, c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, ln := range lns {
		r.p.del(ln.fd)
		if !ln.external {
			sysClose(ln.fd)
		}
	}
	for _, c := range conns {
		r.closeConn(c, ErrPollCrash)
	}
	if h := r.crashHandler.Load(); h != nil {
		(*h)(v)
	}
}

func (r *Reactor) pollLoop() {
	for {
		n, woken, err := r.p.wait(r.events, r.nextTimerMs())
		if err != nil {
			return // poller closed: Stop tore us down
		}
		if woken {
			r.wakeups.Add(1)
			r.wakePending.Store(false)
			if !r.drainPosted() {
				return
			}
		}
		r.fireTimers()
		// Resolve the whole batch to its targets before dispatching any
		// event: a handler may close a connection mid-batch and another
		// goroutine may reuse its fd number via Register/Dial before later
		// events in the same batch dispatch. Looking conns up lazily would
		// deliver those stale events to the fresh connection (a stale hup
		// would even close it); resolving up front pins each event to the
		// registration that existed when the kernel reported it, and the
		// dead() check in dispatchEvent drops events whose connection
		// closed earlier in the batch.
		if cap(r.targets) < n {
			r.targets = make([]batchTarget, n)
		}
		targets := r.targets[:n]
		r.mu.Lock()
		for i := 0; i < n; i++ {
			targets[i] = batchTarget{ln: r.listeners[r.events[i].fd], c: r.conns[r.events[i].fd]}
		}
		r.mu.Unlock()
		for i := 0; i < n; i++ {
			r.dispatchEvent(targets[i], &r.events[i])
			targets[i] = batchTarget{} // release refs between batches
		}
	}
}

// drainPosted runs the queued cross-thread posts; reports false when the
// reactor is stopping (the poll goroutine must exit).
func (r *Reactor) drainPosted() bool {
	r.mu.Lock()
	fns := r.posted
	r.posted = nil
	closed := r.closed
	r.mu.Unlock()
	for _, fn := range fns {
		r.posts.Add(1)
		r.contain(nil, fn)
	}
	return !closed
}

// dispatchEvent handles one readiness event on the poll goroutine. The
// target was resolved at batch start; a connection closed by an earlier
// event in the batch is dropped here instead of reaching its (dead)
// handlers or a reused fd's new owner.
func (r *Reactor) dispatchEvent(t batchTarget, ev *pollEvent) {
	switch {
	case t.ln != nil:
		r.acceptDrain(t.ln)
	case t.c != nil && !t.c.dead():
		r.connEvent(t.c, ev)
	}
}

// acceptDrain accepts until EAGAIN (edge semantics on the listen socket).
// The MaxConns admission cap is enforced here, before any handler sees the
// socket: an over-cap accept is closed immediately, so a connection flood
// costs one accept+close each instead of a registration, a Conn, and
// handler state.
func (r *Reactor) acceptDrain(ln *listener) {
	for {
		fd, err := sysAccept(ln.fd)
		if err != nil {
			return // EAGAIN, or listener closed underneath us
		}
		c := &Conn{r: r, fd: fd}
		r.mu.Lock()
		if r.closed || r.draining {
			r.mu.Unlock()
			sysClose(fd)
			return
		}
		if r.opts.MaxConns > 0 && len(r.conns) >= r.opts.MaxConns {
			r.mu.Unlock()
			r.rstats.AcceptRejects.Inc()
			sysClose(fd)
			continue
		}
		r.conns[fd] = c
		r.mu.Unlock()
		r.contain(c, func() { c.h = ln.onAccept(c) })
		if c.dead() {
			continue // onAccept panicked; contain already closed the conn
		}
		if err := r.p.add(fd, false); err != nil {
			r.closeConn(c, err)
			continue
		}
		r.accepted.Add(1)
	}
}

// connEvent dispatches one connection's readiness, bracketed by the chaos
// interceptor and, when tracing is on, a "ready" span that the handler's
// downstream posts parent to (readiness → dispatch → handler causality).
// The dispatch runs contained: a panic — the handler's or an injected one —
// closes this connection and leaves the loop serving.
func (r *Reactor) connEvent(c *Conn, ev *pollEvent) {
	fn, keep := r.intercept("ready", func() { r.connReady(c, ev) })
	if !keep {
		r.dropped.Add(1)
		return
	}
	sink := trace.ActiveSink()
	if sink == nil {
		r.contain(c, fn)
		return
	}
	span := trace.BeginSpan(sink, "ready", r.name, 0)
	prev := trace.Swap(span)
	r.contain(c, fn)
	trace.Swap(prev)
	trace.EndSpan(sink, span, "ready", r.name)
}

func (r *Reactor) connReady(c *Conn, ev *pollEvent) {
	if ev.writable {
		r.writeEvents.Add(1)
		c.flush()
	}
	if ev.readable {
		r.readEvents.Add(1)
		r.readDrain(c)
	}
	if ev.hup && !c.dead() {
		// Peer hung up and no data pending: epoll reported RDHUP/HUP
		// without readable bytes (or the read drain already consumed
		// them). A read would return 0 now; close eagerly.
		r.closeConn(c, io.EOF)
	}
}

// readDrain reads until EAGAIN or EOF — the edge-triggered contract.
func (r *Reactor) readDrain(c *Conn) {
	r.san.Check("readDrain on " + r.name)
	for !c.dead() {
		n, err := r.ioRead(c.fd, r.readBuf)
		switch {
		case n > 0:
			r.bytesRead.Add(int64(n))
			c.noteRead()
			if c.h.OnReadable != nil {
				c.h.OnReadable(c, r.readBuf[:n])
			}
		case err == nil:
			// n == 0: EOF.
			r.closeConn(c, io.EOF)
			return
		case isWouldBlock(err):
			return
		case isEINTR(err):
			continue
		default:
			r.closeConn(c, err)
			return
		}
	}
}

// closeConn removes c from the reactor, closes the descriptor, and fires
// OnClose exactly once. Poll-goroutine only. The descriptor is closed
// under the write mutex so a concurrent Conn.Write can never issue a
// syscall on a closed (and possibly kernel-recycled) fd number.
func (r *Reactor) closeConn(c *Conn, err error) {
	r.san.Check("closeConn on " + r.name)
	if !c.closeState.CompareAndSwap(0, 1) {
		return
	}
	r.mu.Lock()
	delete(r.conns, c.fd)
	lastOut := r.draining && !r.closed && len(r.conns) == 0
	r.mu.Unlock()
	r.p.del(c.fd)
	c.wmu.Lock()
	c.closing = true
	c.pending = nil
	c.pendingLen = 0
	sysClose(c.fd)
	c.wmu.Unlock()
	if c.h.OnClose != nil {
		// OnClose is contained on its own: the connection is already gone,
		// so a panicking close callback is counted and recovered without
		// re-entering closeConn.
		func() {
			defer func() {
				if v := recover(); v != nil {
					r.rstats.HandlerPanics.Inc()
					if h := r.panicHandler.Load(); h != nil {
						(*h)(v)
					}
				}
			}()
			c.h.OnClose(c, err)
		}()
	}
	if lastOut {
		// Drain complete: the last connection left and no force-close was
		// needed. Stop schedules the final teardown post and returns (we
		// are on the poll goroutine).
		r.Stop()
	}
}

// Stop closes every listener and connection (firing their OnClose with
// ErrClosed on the poll goroutine), rejects further posts, and joins the
// poll goroutine. Safe to call more than once; concurrent callers wait
// for the teardown to finish. Callable from a handler callback or Post fn
// on the poll goroutine itself: in that case Stop cannot join the loop it
// is running on, so it returns once the teardown is scheduled — the loop
// exits after the current batch drains.
func (r *Reactor) Stop() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		if !r.Owns() {
			r.wg.Wait()
		}
		return
	}
	r.closed = true
	// Final post: runs on the poll goroutine after the queue drains, closes
	// everything while still confined, then drainPosted sees closed and the
	// loop exits.
	r.posted = append(r.posted, func() {
		r.mu.Lock()
		lns := make([]*listener, 0, len(r.listeners))
		for _, ln := range r.listeners {
			lns = append(lns, ln)
		}
		conns := make([]*Conn, 0, len(r.conns))
		for _, c := range r.conns {
			conns = append(conns, c)
		}
		r.listeners = map[int]*listener{}
		r.mu.Unlock()
		for _, ln := range lns {
			r.p.del(ln.fd)
			if !ln.external {
				sysClose(ln.fd)
			}
		}
		for _, c := range conns {
			r.closeConn(c, ErrClosed)
		}
	})
	r.mu.Unlock()
	r.wake()
	if r.Owns() {
		return // joining our own goroutine would deadlock; see doc comment
	}
	r.wg.Wait()
}

// Drain is the graceful Stop: accepting stops immediately, every
// connection is closed through the flush-before-close path (spilled writes
// go out on their writability edges, OnDrained fires as usual), and
// connections that still have not flushed when the deadline d expires are
// force-closed (counted by ForceCloses). Drain returns once the reactor
// has fully stopped. Calling it from a poll-goroutine callback returns
// after the drain is scheduled, like Stop. Draining an already-stopped
// reactor just waits for the teardown.
func (r *Reactor) Drain(d time.Duration) {
	deadline := time.Now().Add(d)
	if r.Owns() {
		r.beginDrain(deadline)
		return
	}
	_ = r.Post(func() { r.beginDrain(deadline) })
	r.wg.Wait()
}

// beginDrain starts the drain on the poll goroutine.
func (r *Reactor) beginDrain(deadline time.Time) {
	r.mu.Lock()
	if r.draining || r.closed {
		r.mu.Unlock()
		return
	}
	r.draining = true
	lns := make([]*listener, 0, len(r.listeners))
	for _, ln := range r.listeners {
		lns = append(lns, ln)
	}
	r.listeners = map[int]*listener{}
	conns := make([]*Conn, 0, len(r.conns))
	for _, c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, ln := range lns {
		r.p.del(ln.fd)
		if !ln.external {
			sysClose(ln.fd)
		}
	}
	if len(conns) == 0 {
		r.Stop()
		return
	}
	for _, c := range conns {
		// Flush-before-close: connections with no pending writes close
		// now (closeConn sees the drain finish); the rest close from
		// flush() once their queues empty.
		c.Close()
	}
	r.addTimer(deadline, func() {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		rem := make([]*Conn, 0, len(r.conns))
		for _, c := range r.conns {
			rem = append(rem, c)
		}
		r.mu.Unlock()
		for _, c := range rem {
			r.rstats.ForceCloses.Inc()
			r.closeConn(c, ErrWriteStall)
		}
		r.Stop()
	})
}

// Conn is one registered descriptor: a virtual target bound to an FD. Its
// HandlerFuncs run confined to the poll goroutine; Write and Close are
// safe from any goroutine.
type Conn struct {
	r  *Reactor
	fd int
	h  HandlerFuncs

	ctx atomic.Value // user attachment

	wmu        sync.Mutex
	pending    [][]byte // spilled writes, drained on writability edges
	pendingLen int
	wantWrite  bool // fd registered for writability edges
	closing    bool // Close requested; finish pending writes first

	closeState atomic.Int32 // 0 open, 1 closed

	// Deadline state. Durations and instants are atomics so the arming
	// methods and the hot read/write paths stay lock-free; the deadline
	// timer itself is poll-confined (see deadlineCheck).
	idleDur    atomic.Int64 // idle deadline (ns); 0 disabled
	readDLns   atomic.Int64 // absolute read deadline (unixnano); 0 disabled
	stallDur   atomic.Int64 // write-stall deadline (ns); 0 disabled
	lastAct    atomic.Int64 // unixnano of last read/write activity
	stallSince atomic.Int64 // unixnano when writes first spilled; 0 when drained
	dlArmed    atomic.Bool  // a deadline timer is scheduled on the poll goroutine
}

// Fd returns the underlying descriptor (for diagnostics; the reactor owns
// its lifecycle).
func (c *Conn) Fd() int { return c.fd }

// RemoteAddr returns the peer address ("" for non-socket descriptors or
// closed connections).
func (c *Conn) RemoteAddr() string {
	if c.dead() {
		return ""
	}
	return sysPeerAddr(c.fd)
}

// Reactor returns the owning reactor.
func (c *Conn) Reactor() *Reactor { return c.r }

// SetContext attaches an arbitrary per-connection value (the netloop
// Client, a session, ...).
func (c *Conn) SetContext(v any) { c.ctx.Store(v) }

// Context returns the attached value (nil if none).
func (c *Conn) Context() any { return c.ctx.Load() }

// Post runs fn on the poll goroutine — the hop back into this
// connection's confined context from a worker block. The connection may
// close before fn runs; check Closed in fn if that matters.
func (c *Conn) Post(fn func()) error { return c.r.Post(fn) }

// Closed reports whether the connection has left the reactor.
func (c *Conn) Closed() bool { return c.dead() }

func (c *Conn) dead() bool { return c.closeState.Load() != 0 }

// PendingWrites returns the number of spilled bytes awaiting a
// writability edge — the live backpressure measure.
func (c *Conn) PendingWrites() int {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.pendingLen
}

// SetIdleDeadline arms (or, with d <= 0, disarms) the idle reaper: the
// connection is closed with ErrIdleTimeout if neither a read nor a
// successful write happens for d. Writes count as activity so a passive
// receiver (a chat-room member who only gets broadcasts) is not reaped
// while traffic still flows to it; a slowloris peer that neither sends
// nor accepts bytes is. Safe from any goroutine.
func (c *Conn) SetIdleDeadline(d time.Duration) {
	if d <= 0 {
		c.idleDur.Store(0)
		return
	}
	c.lastAct.Store(time.Now().UnixNano())
	c.idleDur.Store(int64(d))
	c.armDeadline()
}

// SetReadDeadline arms a one-shot read deadline: the connection is closed
// with ErrReadTimeout if no bytes arrive by t. The first bytes that do
// arrive disarm it (re-arm per message for a per-read deadline). A zero t
// disarms. Safe from any goroutine.
func (c *Conn) SetReadDeadline(t time.Time) {
	if t.IsZero() {
		c.readDLns.Store(0)
		return
	}
	c.readDLns.Store(t.UnixNano())
	c.armDeadline()
}

// SetWriteStallDeadline arms (or, with d <= 0, disarms) the write-stall
// reaper: once writes spill into the pending queue, the queue must drain
// to empty within d or the connection is closed with ErrWriteStall — the
// peer that stopped reading no longer pins buffered bytes forever. Safe
// from any goroutine.
func (c *Conn) SetWriteStallDeadline(d time.Duration) {
	if d <= 0 {
		c.stallDur.Store(0)
		return
	}
	c.stallDur.Store(int64(d))
	c.wmu.Lock()
	spilled := c.pendingLen > 0
	c.wmu.Unlock()
	if spilled {
		c.stallSince.CompareAndSwap(0, time.Now().UnixNano())
		c.armDeadline()
	}
}

// noteRead records read activity for the idle deadline and satisfies a
// pending read deadline. Poll-goroutine only (called from readDrain).
func (c *Conn) noteRead() {
	if c.idleDur.Load() != 0 {
		c.lastAct.Store(time.Now().UnixNano())
	}
	if c.readDLns.Load() != 0 {
		c.readDLns.Store(0)
	}
}

// noteWrite records successful write progress for the idle deadline.
func (c *Conn) noteWrite() {
	if c.idleDur.Load() != 0 {
		c.lastAct.Store(time.Now().UnixNano())
	}
}

// armDeadline ensures a deadline-check timer is scheduled on the poll
// goroutine. Coalesced: while one is armed, arming again is a no-op, and
// deadlineCheck re-arms itself for as long as any deadline stays active.
// Safe from any goroutine.
func (c *Conn) armDeadline() {
	if c.dlArmed.Load() || c.dead() {
		return
	}
	if c.r.Owns() {
		c.armDeadlineOnLoop()
		return
	}
	_ = c.r.Post(c.armDeadlineOnLoop)
}

// armDeadlineOnLoop schedules the check timer once. Poll-goroutine only.
func (c *Conn) armDeadlineOnLoop() {
	if c.dead() || c.dlArmed.Swap(true) {
		return
	}
	when, ok := c.nextDeadline(time.Now())
	if !ok {
		c.dlArmed.Store(false)
		return
	}
	c.r.addTimer(when, c.deadlineCheck)
}

// nextDeadline computes the earliest instant any armed deadline can fire
// (which may be in the past — the check closes then).
func (c *Conn) nextDeadline(now time.Time) (time.Time, bool) {
	var next time.Time
	earlier := func(t time.Time) {
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	if d := c.idleDur.Load(); d > 0 {
		earlier(time.Unix(0, c.lastAct.Load()+d))
	}
	if dl := c.readDLns.Load(); dl != 0 {
		earlier(time.Unix(0, dl))
	}
	if d := c.stallDur.Load(); d > 0 {
		if since := c.stallSince.Load(); since != 0 {
			earlier(time.Unix(0, since+d))
		}
	}
	return next, !next.IsZero()
}

// deadlineCheck enforces the connection's deadlines: expired ones close it
// (ErrIdleTimeout / ErrReadTimeout / ErrWriteStall, counted and traced as
// OpConnDeadline); otherwise the timer re-arms for the earliest upcoming
// instant. Poll-goroutine only.
func (c *Conn) deadlineCheck() {
	if c.dead() {
		c.dlArmed.Store(false)
		return
	}
	now := time.Now()
	nowNs := now.UnixNano()
	var expired error
	if d := c.idleDur.Load(); d > 0 && nowNs-c.lastAct.Load() >= d {
		expired = ErrIdleTimeout
	} else if dl := c.readDLns.Load(); dl != 0 && nowNs >= dl {
		expired = ErrReadTimeout
	} else if d := c.stallDur.Load(); d > 0 {
		if since := c.stallSince.Load(); since != 0 && nowNs-since >= d {
			expired = ErrWriteStall
		}
	}
	if expired != nil {
		c.r.rstats.DeadlineCloses.Inc()
		if sink := trace.ActiveSink(); sink != nil {
			sink.Record(trace.Event{Time: now, Op: trace.OpConnDeadline, Target: c.r.name})
		}
		c.r.closeConn(c, expired)
		c.dlArmed.Store(false)
		return
	}
	if when, ok := c.nextDeadline(now); ok {
		c.r.addTimer(when, c.deadlineCheck) // dlArmed stays true
		return
	}
	// Nothing armed: release the timer, then re-check for an arming that
	// raced the release (a Write spilling just as we disarm) — without
	// this, that arm request could read dlArmed == true and be dropped.
	c.dlArmed.Store(false)
	if _, ok := c.nextDeadline(now); ok && !c.dlArmed.Swap(true) {
		when, _ := c.nextDeadline(now)
		c.r.addTimer(when, c.deadlineCheck)
	}
}

// Write sends p: straight to the socket while the kernel buffer accepts
// it, with any remainder copied into the pending queue and flushed on
// writability edges. It never blocks. Safe from any goroutine.
func (c *Conn) Write(p []byte) error {
	if c.dead() {
		return ErrConnClosed
	}
	c.wmu.Lock()
	if c.closing {
		c.wmu.Unlock()
		return ErrConnClosed
	}
	if len(c.pending) == 0 {
		for len(p) > 0 {
			n, err := c.r.ioWrite(c.fd, p)
			if n > 0 {
				c.r.bytesWritten.Add(int64(n))
				c.noteWrite()
				p = p[n:]
				continue
			}
			if isWouldBlock(err) {
				break
			}
			if isEINTR(err) {
				continue
			}
			// Write error: the read side will surface it as a readiness
			// event and close; report it to the caller too.
			c.wmu.Unlock()
			return fmt.Errorf("reactor: write fd %d: %w", c.fd, err)
		}
		if len(p) == 0 {
			c.wmu.Unlock()
			return nil
		}
	}
	// Spill: own a copy, ask for writability edges. Arming happens under
	// wmu so it serializes with flush's disarm — an arm can never be
	// overwritten by a disarm decided against stale pending state.
	buf := make([]byte, len(p))
	copy(buf, p)
	c.pending = append(c.pending, buf)
	c.pendingLen += len(buf)
	c.r.partialWrites.Add(1)
	var armErr error
	if !c.wantWrite {
		if armErr = c.r.p.mod(c.fd, true); armErr != nil {
			// The spilled bytes would never flush: fail the write and tear
			// the connection down instead of stalling it silently.
			armErr = fmt.Errorf("reactor: arm write fd %d: %w", c.fd, armErr)
			c.closing = true
			c.pending = nil
			c.pendingLen = 0
		} else {
			c.wantWrite = true
		}
	}
	c.wmu.Unlock()
	if armErr != nil {
		c.closeFromAnywhere(armErr)
		return armErr
	}
	// Spilled bytes start the write-stall clock (if one is configured).
	// Arm outside wmu: armDeadline may Post, and Post must never run
	// under a lock the poll goroutine's close path also wants.
	if c.stallDur.Load() > 0 {
		c.stallSince.CompareAndSwap(0, time.Now().UnixNano())
		c.armDeadline()
	}
	return nil
}

// closeFromAnywhere routes a teardown onto the poll goroutine (OnClose is
// confined there): directly when already on it, via Post otherwise. A
// Post rejection means the reactor is stopping and will close every
// connection itself.
func (c *Conn) closeFromAnywhere(err error) {
	if c.r.Owns() {
		c.r.closeConn(c, err)
		return
	}
	_ = c.r.Post(func() { c.r.closeConn(c, err) })
}

// flush drains the pending queue on a writability edge (poll goroutine).
func (c *Conn) flush() {
	c.wmu.Lock()
	for len(c.pending) > 0 {
		buf := c.pending[0]
		n, err := c.r.ioWrite(c.fd, buf)
		if n > 0 {
			c.r.bytesWritten.Add(int64(n))
			c.noteWrite()
			c.pendingLen -= n
			if n < len(buf) {
				c.pending[0] = buf[n:]
				continue
			}
			c.pending[0] = nil
			c.pending = c.pending[1:]
			continue
		}
		if isWouldBlock(err) {
			c.wmu.Unlock()
			return
		}
		if isEINTR(err) {
			continue
		}
		c.wmu.Unlock()
		c.r.closeConn(c, fmt.Errorf("reactor: flush fd %d: %w", c.fd, err))
		return
	}
	c.pending = nil
	c.stallSince.Store(0) // queue drained: write-stall clock resets
	drained := c.wantWrite
	var disarmErr error
	if drained {
		// Disarm while still holding wmu: a concurrent Write that spills
		// new data serializes behind this mod, sees wantWrite == false,
		// and re-arms — disarming after unlocking could clobber that arm
		// and stall the connection's queued writes forever.
		c.wantWrite = false
		disarmErr = c.r.p.mod(c.fd, false)
	}
	closing := c.closing
	c.wmu.Unlock()
	if disarmErr != nil {
		c.r.closeConn(c, fmt.Errorf("reactor: disarm write fd %d: %w", c.fd, disarmErr))
		return
	}
	if drained && c.h.OnDrained != nil && !c.dead() {
		c.h.OnDrained(c)
	}
	if closing {
		c.r.closeConn(c, ErrConnClosed)
	}
}

// Close disconnects: pending writes are flushed first, then the
// descriptor is closed and OnClose fires (with ErrConnClosed). Safe from
// any goroutine; returns after the close has been scheduled, not
// necessarily performed.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if c.closing {
		c.wmu.Unlock()
		return nil
	}
	c.closing = true
	hasPending := len(c.pending) > 0
	c.wmu.Unlock()
	if hasPending {
		return nil // flush() fires the close once the queue drains
	}
	if c.r.Owns() {
		c.r.closeConn(c, ErrConnClosed)
		return nil
	}
	err := c.r.Post(func() { c.r.closeConn(c, ErrConnClosed) })
	if errors.Is(err, ErrClosed) {
		// Reactor stopping: its final post closes every conn.
		return nil
	}
	return err
}
