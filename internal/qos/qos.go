// Package qos is the overload-protection layer of the virtual-target
// runtime: admission control, queue deadlines, and circuit breaking for
// target invocations.
//
// The paper's runtime (Algorithm 1) admits every target block
// unconditionally — adequate for a GUI, fatal for a server: when offered
// load exceeds a worker target's capacity, an unbounded queue converts
// overload into unbounded latency while throughput stays pinned at
// capacity. Event systems beat thread-per-request architectures under load
// precisely because the scheduler controls queue admission; this package
// supplies that control as a layer callers place in front of Invoke:
//
//	limiter := qos.NewLimiter("worker", capacity, queueLimit, qos.CoDel(5*time.Millisecond, 100*time.Millisecond))
//	if err := limiter.Acquire(ctx); err != nil {
//	    // shed: fail fast (HTTP 503) instead of queueing
//	}
//	defer limiter.Release()
//	rt.InvokeCtx(ctx, "worker", core.Wait, block)
//
// Three cooperating pieces:
//
//   - Limiter: a slot semaphore with a bounded wait queue and a pluggable
//     overload Policy — Block (wait indefinitely), Reject (fail instantly
//     when saturated), TimeoutAfter (bounded queue deadline), and a
//     CoDel-style controller that sheds when queue sojourn time stays
//     above a target for a full interval (controlling delay, not length).
//   - Breaker: a per-target circuit breaker that opens after N consecutive
//     failures (panics, deadline expiries), rejects instantly while open,
//     and probes with a single trial request after a cooldown.
//   - Retry: exponential backoff with full jitter for invocations rejected
//     by a limiter or breaker, so well-behaved clients retry without
//     synchronizing into retry storms.
//
// Both Limiter and Breaker emit trace events (trace.OpShed,
// trace.OpBreakerOpen, trace.OpBreakerClose) so scheduling decisions under
// overload are assertable in tests, and record their measurements in a
// metrics.QoSStats.
package qos

import (
	"errors"
	"time"
)

// Errors returned by the admission layer.
var (
	// ErrShed reports an invocation rejected by admission control: the
	// wait queue was full, the queue deadline expired, or the CoDel
	// controller decided the target is persistently overloaded. Shed
	// invocations never reached the target; callers should fail fast
	// (e.g. HTTP 503) or retry with backoff.
	ErrShed = errors.New("qos: shed by admission control")
	// ErrBreakerOpen reports an invocation refused by an open circuit
	// breaker.
	ErrBreakerOpen = errors.New("qos: circuit breaker open")
)

type policyKind int

const (
	policyBlock policyKind = iota
	policyReject
	policyTimeout
	policyCoDel
)

// Policy selects how a Limiter treats an invocation that cannot be
// admitted immediately. Construct with Block, Reject, TimeoutAfter, or
// CoDel.
type Policy struct {
	kind     policyKind
	deadline time.Duration // TimeoutAfter
	target   time.Duration // CoDel: acceptable sojourn
	interval time.Duration // CoDel: how long sojourn may exceed target
}

// Block waits indefinitely for a slot (bounded only by the wait-queue
// length and the caller's context). This reproduces the seed's implicit
// policy and is the right choice for batch work.
func Block() Policy { return Policy{kind: policyBlock} }

// Reject sheds immediately whenever no slot is free: no waiting at all.
// This is the classic fail-fast admission valve for latency-critical
// services.
func Reject() Policy { return Policy{kind: policyReject} }

// TimeoutAfter waits up to d for a slot, then sheds. It bounds the queue
// sojourn of every individual invocation.
func TimeoutAfter(d time.Duration) Policy {
	if d <= 0 {
		return Reject()
	}
	return Policy{kind: policyTimeout, deadline: d}
}

// CoDel is a controlled-delay queue policy modeled on the CoDel AQM
// algorithm: admitted invocations measure their queue sojourn, and once
// sojourn has exceeded target continuously for a full interval the limiter
// starts shedding, draining the standing queue until sojourn drops back
// under target. Unlike TimeoutAfter it tolerates short bursts (sojourn
// spikes shorter than interval pass untouched) while still preventing a
// persistent standing queue. Typical values: target a small multiple of
// the per-task service time, interval ~100ms.
func CoDel(target, interval time.Duration) Policy {
	if target <= 0 {
		target = 5 * time.Millisecond
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return Policy{kind: policyCoDel, target: target, interval: interval}
}

// String names the policy for logs and bench labels.
func (p Policy) String() string {
	switch p.kind {
	case policyReject:
		return "reject"
	case policyTimeout:
		return "timeout(" + p.deadline.String() + ")"
	case policyCoDel:
		return "codel(" + p.target.String() + "," + p.interval.String() + ")"
	default:
		return "block"
	}
}
