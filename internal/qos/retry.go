package qos

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"repro/internal/executor"
)

// Retryable reports whether err is a transient admission failure worth
// retrying with backoff: a shed, an open breaker, or a full executor
// queue. Permanent errors (unknown target, nil block, task panics) and
// context expiry are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrShed) ||
		errors.Is(err, ErrBreakerOpen) ||
		errors.Is(err, executor.ErrQueueFull)
}

// Retry runs an operation with capped exponential backoff and full
// jitter. The zero value is unusable; DefaultRetry gives sane settings.
type Retry struct {
	// Attempts is the total number of tries, including the first
	// (clamped to ≥1).
	Attempts int
	// Base is the backoff before the first retry; each subsequent
	// backoff doubles.
	Base time.Duration
	// Cap bounds a single backoff (0 = uncapped).
	Cap time.Duration
	// Jitter selects full jitter: each sleep is drawn uniformly from
	// [0, backoff] so synchronized clients desynchronize. When false
	// the sleep is exactly the backoff.
	Jitter bool
}

// DefaultRetry retries 4 times total starting at 1ms, capped at 100ms,
// with full jitter.
func DefaultRetry() Retry {
	return Retry{Attempts: 4, Base: time.Millisecond, Cap: 100 * time.Millisecond, Jitter: true}
}

// Do invokes fn until it succeeds, fails permanently, or attempts are
// exhausted, sleeping the backoff schedule between tries. It returns nil
// on success, ctx's error if the context expires while backing off, and
// otherwise fn's last error. Only Retryable errors are retried.
func (r Retry) Do(ctx context.Context, fn func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := r.Base
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			sleep := backoff
			if r.Cap > 0 && sleep > r.Cap {
				sleep = r.Cap
			}
			if r.Jitter {
				sleep = time.Duration(rand.Int63n(int64(sleep) + 1))
			}
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
			backoff *= 2
		}
		if err = fn(); err == nil || !Retryable(err) {
			return err
		}
	}
	return err
}
