package qos

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestFastPathAdmission(t *testing.T) {
	l := NewLimiter("t", 2, 0, Reject())
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Admitted.Value(); got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
	l.Release()
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire after Release should succeed")
	}
}

func TestRejectPolicyShedsWhenSaturated(t *testing.T) {
	l := NewLimiter("t", 1, 8, Reject())
	buf := trace.NewBuffer(16)
	l.SetTraceSink(buf)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if got := l.Stats().Shed.Value(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	if buf.CountOp(trace.OpShed) != 1 {
		t.Fatalf("trace OpShed count = %d, want 1", buf.CountOp(trace.OpShed))
	}
}

func TestBoundedWaitQueueSheds(t *testing.T) {
	// Capacity 1, one waiter allowed: the third concurrent Acquire
	// must shed instead of joining the queue.
	l := NewLimiter("t", 1, 1, Block())
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiterIn := make(chan error, 1)
	go func() { waiterIn <- l.Acquire(context.Background()) }()
	// Let the waiter enqueue.
	deadline := time.Now().Add(2 * time.Second)
	for l.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow Acquire err = %v, want ErrShed", err)
	}
	l.Release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter err = %v, want admission", err)
	}
}

func TestBlockPolicyWaitsForSlot(t *testing.T) {
	l := NewLimiter("t", 1, -1, Block())
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- l.Acquire(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-got:
		t.Fatalf("Acquire returned %v before Release", err)
	default:
	}
	l.Release()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if s := l.Stats().Sojourn; s.Count() != 2 || s.Max() <= 0 {
		t.Fatalf("sojourn histogram: count=%d max=%v, want 2 samples with positive max", s.Count(), s.Max())
	}
}

func TestTimeoutAfterShedsOnQueueDeadline(t *testing.T) {
	l := NewLimiter("t", 1, -1, TimeoutAfter(20*time.Millisecond))
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %v, want ≥ queue deadline", waited)
	}
}

func TestAcquireHonorsCallerContext(t *testing.T) {
	l := NewLimiter("t", 1, -1, Block())
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := l.Stats().Canceled.Value(); got != 1 {
		t.Fatalf("Canceled = %d, want 1", got)
	}
	if got := l.Stats().Shed.Value(); got != 0 {
		t.Fatalf("Shed = %d, want 0 (context expiry is not a shed)", got)
	}
}

func TestCoDelShedsPersistentStandingQueue(t *testing.T) {
	// Eight contenders share one slot, each holding it for twice the
	// sojourn target, so waiters' queue delay sits above target
	// continuously. Once the first full interval elapses, dequeues
	// start shedding to drain the standing queue.
	target, interval := time.Millisecond, 20*time.Millisecond
	l := NewLimiter("t", 1, -1, CoDel(target, interval))

	var shed, admitted atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(500 * time.Millisecond)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				err := l.Acquire(context.Background())
				switch {
				case errors.Is(err, ErrShed):
					shed.Add(1)
				case err == nil:
					// Hold briefly so the queue stays standing, then
					// hand the slot back.
					time.Sleep(2 * target)
					l.Release()
					admitted.Add(1)
				default:
					t.Errorf("unexpected Acquire error: %v", err)
					return
				}
				if shed.Load() > 0 {
					return
				}
			}
		}()
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatalf("CoDel never shed under a persistent standing queue (admitted=%d)", admitted.Load())
	}
}

func TestCoDelPassesShortBursts(t *testing.T) {
	// A single waiter whose sojourn exceeds target only briefly (well
	// under the interval) must be admitted, not shed.
	l := NewLimiter("t", 1, -1, CoDel(time.Millisecond, time.Second))
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- l.Acquire(context.Background()) }()
	time.Sleep(5 * time.Millisecond) // sojourn > target, < interval
	l.Release()
	if err := <-got; err != nil {
		t.Fatalf("burst waiter err = %v, want admission", err)
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !l.TryAcquire() {
		t.Fatal("nil TryAcquire should admit")
	}
	l.Release()
}

func TestConcurrentAcquireReleaseStress(t *testing.T) {
	// Exercise the semaphore + counters under contention (run with -race).
	l := NewLimiter("t", 4, 64, TimeoutAfter(50*time.Millisecond))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := l.Acquire(context.Background()); err == nil {
					l.Release()
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Admitted.Value()+st.Shed.Value() != 32*50 {
		t.Fatalf("admitted(%d)+shed(%d) != %d", st.Admitted.Value(), st.Shed.Value(), 32*50)
	}
}
