package qos

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/executor"
)

func TestRetrySucceedsAfterTransientSheds(t *testing.T) {
	r := Retry{Attempts: 5, Base: time.Millisecond}
	calls := 0
	err := r.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return ErrShed
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	r := Retry{Attempts: 3, Base: time.Millisecond}
	calls := 0
	err := r.Do(context.Background(), func() error { calls++; return ErrBreakerOpen })
	if !errors.Is(err, ErrBreakerOpen) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want ErrBreakerOpen/3", err, calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("permanent")
	r := Retry{Attempts: 5, Base: time.Millisecond}
	calls := 0
	err := r.Do(context.Background(), func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent/1", err, calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	r := Retry{Attempts: 100, Base: 50 * time.Millisecond}
	err := r.Do(ctx, func() error { return ErrShed })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestRetryBackoffGrows(t *testing.T) {
	// Without jitter the sleeps are exactly Base, 2*Base, ... — three
	// retries at 10ms base must take at least 10+20+40 = 70ms.
	r := Retry{Attempts: 4, Base: 10 * time.Millisecond}
	start := time.Now()
	_ = r.Do(context.Background(), func() error { return ErrShed })
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Fatalf("elapsed = %v, want ≥ 70ms of backoff", elapsed)
	}
}

func TestRetryCapBoundsBackoff(t *testing.T) {
	r := Retry{Attempts: 4, Base: 30 * time.Millisecond, Cap: 5 * time.Millisecond}
	start := time.Now()
	_ = r.Do(context.Background(), func() error { return ErrShed })
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("elapsed = %v, want capped backoff well under 200ms", elapsed)
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{ErrShed, ErrBreakerOpen, executor.ErrQueueFull} {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, context.Canceled, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}
