package qos

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// Closed passes invocations through (healthy target).
	Closed BreakerState = iota
	// Open rejects invocations instantly (target failing).
	Open
	// HalfOpen lets exactly one probe invocation through to test
	// whether the target has recovered.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-target circuit breaker. It opens after Threshold
// consecutive failures (task panics, deadline expiries — whatever the
// caller counts as failure), rejects invocations with ErrBreakerOpen while
// open, and after Cooldown admits a single half-open probe: the probe's
// success closes the breaker, its failure reopens it for another cooldown.
//
// The caller wraps each invocation as:
//
//	if err := b.Allow(); err != nil { reject }
//	err := invoke()
//	if failed(err) { b.Failure() } else { b.Success() }
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration
	clock     vclock.Clock // cooldown time source; wall clock by default

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	rejects metrics.Counter
	opens   metrics.Counter
	sink    atomic.Pointer[trace.Sink]
}

// NewBreaker builds a breaker for the named target that opens after
// threshold consecutive failures (clamped to ≥1) and probes after cooldown
// (≤0 defaults to one second).
func NewBreaker(name string, threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{name: name, threshold: threshold, cooldown: cooldown, clock: vclock.Wall}
}

// SetClock replaces the breaker's time source (nil restores the wall
// clock). Deterministic tests and the simulation executor advance a
// controlled clock through a cooldown instead of sleeping it out.
func (b *Breaker) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Wall
	}
	b.mu.Lock()
	b.clock = c
	b.mu.Unlock()
}

// Name returns the guarded target's name.
func (b *Breaker) Name() string { return b.name }

// State returns the breaker's current position (Open reports HalfOpen once
// the cooldown has elapsed, since the next Allow would probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.clock.Now().Sub(b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// Rejections returns how many invocations the breaker refused.
func (b *Breaker) Rejections() int64 { return b.rejects.Value() }

// Opens returns how many times the breaker transitioned to Open.
func (b *Breaker) Opens() int64 { return b.opens.Value() }

// SetTraceSink installs a sink receiving OpBreakerOpen/OpBreakerClose
// events (nil disables).
func (b *Breaker) SetTraceSink(s trace.Sink) {
	if s == nil {
		b.sink.Store(nil)
		return
	}
	b.sink.Store(&s)
}

func (b *Breaker) emit(op trace.Op) {
	if p := b.sink.Load(); p != nil {
		(*p).Record(trace.Event{Op: op, Target: b.name})
	}
}

// Allow reports whether an invocation may proceed: nil to proceed,
// ErrBreakerOpen to reject. A nil Breaker allows everything.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			b.rejects.Inc()
			return ErrBreakerOpen
		}
		// Cooldown elapsed: half-open, and this caller is the probe.
		b.state = HalfOpen
		b.probing = true
		return nil
	default: // HalfOpen
		if b.probing {
			b.rejects.Inc()
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a successful invocation: it resets the failure streak
// and closes the breaker if the half-open probe succeeded.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == HalfOpen {
		b.state = Closed
		b.probing = false
		b.emit(trace.OpBreakerClose)
	}
}

// Failure records a failed invocation: it extends the failure streak,
// opening the breaker at the threshold, and reopens immediately on a
// failed half-open probe.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.clock.Now()
		b.probing = false
		b.opens.Inc()
		b.emit(trace.OpBreakerOpen)
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = Open
			b.openedAt = b.clock.Now()
			b.failures = 0
			b.opens.Inc()
			b.emit(trace.OpBreakerOpen)
		}
	}
}
