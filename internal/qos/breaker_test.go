package qos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b := NewBreaker("t", 3, time.Hour)
	buf := trace.NewBuffer(16)
	b.SetTraceSink(buf)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before threshold: %v", err)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after 2 failures, want closed", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after 3 failures, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}
	if b.Rejections() != 1 || b.Opens() != 1 {
		t.Fatalf("Rejections=%d Opens=%d, want 1/1", b.Rejections(), b.Opens())
	}
	if buf.CountOp(trace.OpBreakerOpen) != 1 {
		t.Fatalf("OpBreakerOpen count = %d, want 1", buf.CountOp(trace.OpBreakerOpen))
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker("t", 2, time.Hour)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (streak was broken)", b.State())
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b := NewBreaker("t", 1, 10*time.Millisecond)
	mc := vclock.NewManual(time.Time{})
	b.SetClock(mc)
	buf := trace.NewBuffer(16)
	b.SetTraceSink(buf)
	b.Failure() // open
	mc.Advance(15 * time.Millisecond)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	// Concurrent invocation during the probe is rejected.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second Allow during probe = %v, want ErrBreakerOpen", err)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after close: %v", err)
	}
	if buf.CountOp(trace.OpBreakerClose) != 1 {
		t.Fatalf("OpBreakerClose count = %d, want 1", buf.CountOp(trace.OpBreakerClose))
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b := NewBreaker("t", 1, 10*time.Millisecond)
	mc := vclock.NewManual(time.Time{})
	b.SetClock(mc)
	b.Failure() // open
	mc.Advance(15 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after probe failure, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow after reopen = %v, want ErrBreakerOpen", err)
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
}

func TestNilBreakerAllowsEverything(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Success()
	b.Failure()
}
