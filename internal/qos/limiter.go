package qos

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Limiter is per-target admission control: a semaphore of capacity
// execution slots fronted by a bounded wait queue. Acquire admits, sheds,
// or waits according to the limiter's Policy; Release frees a slot.
//
// The intended deployment is one Limiter per worker virtual target with
// capacity equal to the target's thread count, so that "waiting for a
// slot" is exactly "the target's queue would grow" — the condition the
// seed's unbounded queues hide.
type Limiter struct {
	name     string
	policy   Policy
	capacity int
	maxWait  int // wait-queue bound; <0 = unbounded

	slots   chan struct{}
	waiting atomic.Int64

	mu         sync.Mutex // CoDel controller state
	firstAbove time.Time  // when sojourn first exceeded target (zero = not above)

	stats *metrics.QoSStats
	sink  atomic.Pointer[trace.Sink]
}

// NewLimiter builds a limiter named after its target with capacity
// concurrent execution slots and at most maxWait invocations waiting for
// one (maxWait 0 forbids waiting entirely; maxWait < 0 leaves the wait
// queue unbounded, giving the policy alone control). capacity < 1 is
// clamped to 1.
func NewLimiter(name string, capacity, maxWait int, policy Policy) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	l := &Limiter{
		name:     name,
		policy:   policy,
		capacity: capacity,
		maxWait:  maxWait,
		slots:    make(chan struct{}, capacity),
		stats:    metrics.NewQoSStats(),
	}
	for i := 0; i < capacity; i++ {
		l.slots <- struct{}{}
	}
	return l
}

// Name returns the guarded target's name.
func (l *Limiter) Name() string { return l.name }

// Capacity returns the number of execution slots.
func (l *Limiter) Capacity() int { return l.capacity }

// Policy returns the overload policy.
func (l *Limiter) Policy() Policy { return l.policy }

// Stats returns the limiter's live measurements (shared, not a snapshot).
func (l *Limiter) Stats() *metrics.QoSStats { return l.stats }

// Waiting returns the number of invocations currently queued for a slot.
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// SetTraceSink installs a sink receiving one trace.OpShed event per shed
// invocation (nil disables). A nil Limiter method set is safe throughout,
// so callers may thread an optional limiter without nil checks.
func (l *Limiter) SetTraceSink(s trace.Sink) {
	if s == nil {
		l.sink.Store(nil)
		return
	}
	l.sink.Store(&s)
}

func (l *Limiter) emitShed() {
	if p := l.sink.Load(); p != nil {
		(*p).Record(trace.Event{Op: trace.OpShed, Target: l.name})
	}
}

// Acquire obtains an execution slot, applying the overload policy when
// none is free. It returns nil on admission (pair with Release), ErrShed
// when the invocation is shed, or ctx's error when the caller's own
// context expires first. A nil Limiter admits everything.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	// Fast path: free slot, zero sojourn.
	select {
	case <-l.slots:
		l.stats.Admitted.Inc()
		l.stats.Sojourn.Observe(0)
		return nil
	default:
	}
	if l.policy.kind == policyReject {
		l.shed()
		return ErrShed
	}
	// Join the bounded wait queue.
	if n := l.waiting.Add(1); l.maxWait >= 0 && n > int64(l.maxWait) {
		l.waiting.Add(-1)
		l.shed()
		return ErrShed
	}
	defer l.waiting.Add(-1)

	var queueDeadline <-chan time.Time
	if l.policy.kind == policyTimeout {
		timer := time.NewTimer(l.policy.deadline)
		defer timer.Stop()
		queueDeadline = timer.C
	}
	start := time.Now()
	for {
		select {
		case <-l.slots:
			sojourn := time.Since(start)
			l.stats.Sojourn.Observe(sojourn)
			if l.policy.kind == policyCoDel && l.codelDrop(sojourn) {
				// Persistent standing queue: shed this invocation and
				// pass the slot to the next waiter so the queue drains.
				l.Release()
				l.shed()
				return ErrShed
			}
			l.stats.Admitted.Inc()
			return nil
		case <-queueDeadline:
			l.shed()
			return ErrShed
		case <-ctx.Done():
			l.stats.Canceled.Inc()
			return ctx.Err()
		}
	}
}

// TryAcquire is Acquire restricted to the fast path: it takes a free slot
// or reports false without waiting, regardless of policy. For callers that
// must never block (e.g. a network read loop).
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case <-l.slots:
		l.stats.Admitted.Inc()
		l.stats.Sojourn.Observe(0)
		return true
	default:
		l.shed()
		return false
	}
}

// Release frees the slot obtained by a successful Acquire/TryAcquire.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	select {
	case l.slots <- struct{}{}:
	default:
		// More Releases than Acquires is a caller bug; dropping the
		// surplus keeps the semaphore consistent instead of deadlocking.
	}
}

func (l *Limiter) shed() {
	l.stats.Shed.Inc()
	l.emitShed()
}

// codelDrop implements the CoDel control law on dequeue: shed once sojourn
// has been continuously above target for at least interval.
func (l *Limiter) codelDrop(sojourn time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if sojourn < l.policy.target {
		l.firstAbove = time.Time{}
		return false
	}
	if l.firstAbove.IsZero() {
		l.firstAbove = now
		return false
	}
	return now.Sub(l.firstAbove) >= l.policy.interval
}
