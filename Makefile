# Convenience targets for the pyjama-go reproduction.

GO ?= go

.PHONY: all build test race vet sancheck chaos chaos-net explore cover fuzz bench bench-baseline bench-smoke bench-net bench-net-baseline report examples lint ci clean

all: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the repo's own static analysis suite (cmd/ompvet): EDT
# confinement, blocking-call, wait-graph, and directive lint passes.
vet:
	$(GO) run ./cmd/ompvet ./...

# sancheck runs the whole suite under the runtime confinement sanitizer
# (internal/sanitize, build tag `ompsan`): every EDT delivery, worker
# dequeue, and reactor poll-path asserts goroutine affinity against its
# home context and panics with both stacks on violation. Combined with
# -race so a stamp miss and a data race surface in the same run.
sancheck:
	$(GO) test -race -tags=ompsan ./...

# chaos runs the fault-injection storm tests (tagged `chaos`) with a pinned
# seed so a failing schedule reproduces; override with CHAOS_SEED=<n>.
CHAOS_SEED ?= 1337
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -tags=chaos ./...

# chaos-net runs the network-edge survivability gate: the chaos-tagged
# reactor/netloop storm tests plus the chatbench -chaos drill (kill storm,
# fd faults, slowloris, admission burst, graceful drain, watchdog control).
chaos-net:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -tags=chaos ./internal/reactor/... ./internal/netloop/...
	CHAOS_SEED=$(CHAOS_SEED) $(GO) run ./cmd/chatbench -chaos -conns 256 -rooms 8 -rounds 3 -out -

# explore runs the deterministic schedule explorer (internal/sim): first
# the committed regression seed corpus (testdata/regression_seeds.json —
# pinned fixes must stay green, detector canaries must still fire), then
# every exploration test over a fresh batch of seeds. SIM_SEED_BASE shifts
# the fresh batch (a nightly job varies it to keep growing coverage);
# SIM_RECORD=1 makes failing seeds land in regression_seeds.candidates.json
# for triage and promotion into the corpus.
SIM_SEED_BASE ?= 1
explore:
	$(GO) test -count=1 -run 'TestReplayRegressionCorpus|TestCorpusReplayIsDeterministic' -v ./internal/sim/
	SIM_SEED_BASE=$(SIM_SEED_BASE) $(GO) test -count=1 ./internal/sim/

# lint mirrors the CI formatting/vet gates, including ompvet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/ompvet ./...

# ci runs exactly what .github/workflows/ci.yml runs.
ci: build lint test race

# cover enforces the coverage floor CI gates on: the seed baseline is
# ~84.8% over ./internal/..., the gate trips below COVER_MIN so genuine
# coverage regressions fail while normal churn doesn't.
COVER_MIN ?= 80.0
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_MIN)% floor" >&2; exit 1; }

# fuzz runs the directive-parser fuzzer live; the committed seed corpus
# under internal/directive/testdata/fuzz/ replays in every normal `go test`.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/directive/

# bench runs the scheduler benchmark suite and writes BENCH_sched.json: the
# fresh numbers merged with the pinned pre-shard baseline in
# bench/baseline.json, with per-benchmark speedups. The run is GATED: it
# fails when a multi-producer Post case exceeds MP_RATIO times Post_1P
# (dispatch contention crept back) or when any case regresses more than 50%
# against the pinned baseline (both knobs live in cmd/benchjson; the
# baseline gate is loose because cross-run noise on small machines is
# ±35%, while the MP ratio is same-run and gets the tight 1.15x). BENCHTIME
# trades noise for wall-clock; bench-baseline re-pins the comparison point
# (only after an intentional regression-resetting change).
# The raw bench output goes through a temp file rather than a pipe so the
# benchjson compile doesn't run concurrently with the benchmarks (on a
# small machine that skews every number); -count plus benchjson's
# min-of-samples parsing filters noisy-neighbor interference.
BENCHTIME ?= 1s
BENCHCOUNT ?= 3
MP_RATIO ?= 1.15
bench:
	$(GO) test -run='^$$' -bench=BenchmarkSched -benchmem -benchtime=$(BENCHTIME) \
		-count=$(BENCHCOUNT) ./bench > .bench.raw
	$(GO) run ./cmd/benchjson -baseline bench/baseline.json -out BENCH_sched.json \
		-gate -max-mp-ratio $(MP_RATIO) < .bench.raw
	@rm -f .bench.raw
	@cat BENCH_sched.json

# bench-mp is the CI-shaped multi-producer contention gate: only the Post
# cases, short benchtime, and only the machine-independent ratio check
# (current _NP vs current _1P; the pinned-baseline comparison is disabled
# because CI hardware differs from the machine that pinned it).
bench-mp:
	$(GO) test -run='^$$' -bench='BenchmarkSchedPost' -benchmem -benchtime=0.3s \
		-count=$(BENCHCOUNT) ./bench > .bench.raw
	$(GO) run ./cmd/benchjson -baseline bench/baseline.json -out /dev/null \
		-gate -max-mp-ratio $(MP_RATIO) -max-regress 0 < .bench.raw
	@rm -f .bench.raw

bench-baseline:
	$(GO) test -run='^$$' -bench=BenchmarkSched -benchmem -benchtime=$(BENCHTIME) \
		-count=$(BENCHCOUNT) ./bench > .bench.raw
	$(GO) run ./cmd/benchjson -capture < .bench.raw > bench/baseline.json
	@rm -f .bench.raw

# bench-smoke compiles and runs every benchmark once — the CI gate that
# keeps the suite from rotting without paying benchmark wall-clock.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-net runs the reactor fan-out drill (cmd/chatbench): a chat
# broadcast storm over the readiness-driven transport, clamped to the fd
# limit, written to BENCH_net.json and compared against the pinned
# bench/net_baseline.json. bench-net-baseline re-pins the comparison point.
NET_CONNS ?= 100000
bench-net:
	$(GO) run ./cmd/chatbench -conns $(NET_CONNS)

bench-net-baseline:
	$(GO) run ./cmd/chatbench -conns $(NET_CONNS) -out bench/net_baseline.json -baseline -

# Regenerate the experimental report (quick scale; use SCALE=full for the
# paper-scale sweep).
SCALE ?= quick
report:
	$(GO) run ./cmd/report -scale $(SCALE) > report.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagepipeline
	$(GO) run ./examples/encryptservice -users 6 -reqs 2 -kbytes 16
	$(GO) run ./examples/guiapp -events 15 -rate 60 -handler 5ms
	$(GO) run ./examples/netservice
	$(GO) run ./examples/devicesim -mb 4
	$(GO) run ./examples/annotated

clean:
	$(GO) clean -testcache
