# Convenience targets for the pyjama-go reproduction.

GO ?= go

.PHONY: all build test race chaos cover bench report examples lint ci clean

all: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# chaos runs the fault-injection storm tests (tagged `chaos`) with a pinned
# seed so a failing schedule reproduces; override with CHAOS_SEED=<n>.
CHAOS_SEED ?= 1337
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -tags=chaos ./...

# lint mirrors the CI formatting/vet gates.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# ci runs exactly what .github/workflows/ci.yml runs.
ci: build lint test race

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the experimental report (quick scale; use SCALE=full for the
# paper-scale sweep).
SCALE ?= quick
report:
	$(GO) run ./cmd/report -scale $(SCALE) > report.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagepipeline
	$(GO) run ./examples/encryptservice -users 6 -reqs 2 -kbytes 16
	$(GO) run ./examples/guiapp -events 15 -rate 60 -handler 5ms
	$(GO) run ./examples/netservice
	$(GO) run ./examples/devicesim -mb 4
	$(GO) run ./examples/annotated

clean:
	$(GO) clean -testcache
