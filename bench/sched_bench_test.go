// Package bench holds the scheduler micro- and macro-benchmarks that track
// the dispatch hot path across PRs: task submission throughput under one and
// many producers, round-trip Invoke latency, the await logical barrier's help
// rate, and EDT pump throughput.
//
// `make bench` runs this suite and writes BENCH_sched.json — the machine's
// perf trajectory — by merging the fresh numbers with the recorded baseline
// in bench/baseline.json (captured before the PR 3 hot-path overhaul). Keep
// benchmark names stable: the JSON keys are the names with the -cpu suffix
// stripped, and future PRs compare against them.
package bench

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/executor"
	"repro/internal/gid"
)

// drain spins until the pool has completed want task bodies. The task bodies
// used by the throughput benchmarks are a single atomic add, so the drain
// cost is charged identically to every implementation under test.
func drain(done *atomic.Int64, want int64) {
	for done.Load() < want {
		// Gosched, not a sleep: on a single-CPU runner a sleep would idle the
		// workers out of the measurement window.
		runtime.Gosched()
	}
}

// BenchmarkSchedPost_1P measures single-producer Post cost on a 2-worker
// pool: the uncontended enqueue path (allocation + wakeup decision).
func BenchmarkSchedPost_1P(b *testing.B) {
	reg := &gid.Registry{}
	p := executor.NewWorkerPool("bench", 2, reg)
	defer p.Shutdown()
	var done atomic.Int64
	body := func() { done.Add(1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Post(body)
	}
	drain(&done, int64(b.N))
}

// benchPostNP measures Post throughput with n concurrent producers hammering
// one 2-worker pool — the many-producer lock-convoy scenario the ROADMAP
// north-star ("heavy traffic from millions of users") implies.
func benchPostNP(b *testing.B, producers int) {
	reg := &gid.Registry{}
	p := executor.NewWorkerPool("bench", 2, reg)
	defer p.Shutdown()
	var done atomic.Int64
	body := func() { done.Add(1) }
	b.ReportAllocs()
	b.SetParallelism(producers) // RunParallel spawns producers×GOMAXPROCS goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Post(body)
		}
	})
	drain(&done, int64(b.N))
}

func BenchmarkSchedPost_8P(b *testing.B)  { benchPostNP(b, 8) }
func BenchmarkSchedPost_64P(b *testing.B) { benchPostNP(b, 64) }

// BenchmarkSchedInvokePingPong measures the round-trip latency of a Wait-mode
// Invoke of an empty block: post, worker wakeup, run, completion, caller
// wakeup. This is the floor every synchronous target-block invocation pays.
func BenchmarkSchedInvokePingPong(b *testing.B) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	if _, err := rt.CreateWorker("worker", 1); err != nil {
		b.Fatal(err)
	}
	block := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke("worker", core.Wait, block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedAwaitHelpRate measures the await logical barrier on a worker
// whose own queue keeps receiving tasks: Algorithm 1 lines 14-16, where the
// encountering thread "processes another runnable task" instead of idling.
// helps/op reports how many queued tasks the barrier actually drained.
func BenchmarkSchedAwaitHelpRate(b *testing.B) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	worker, err := rt.CreateWorker("worker", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.CreateWorker("aux", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, _ := rt.Invoke("worker", core.Nowait, func() {
			// The worker awaits aux; its own queue gets a task meanwhile.
			rt.Invoke("aux", core.Await, func() {})
		})
		rt.Invoke("worker", core.Nowait, func() {})
		comp.Wait()
	}
	b.StopTimer()
	st := worker.Stats()
	b.ReportMetric(float64(st.Helped)/float64(b.N), "helps/op")
}

// BenchmarkSchedEDTPump measures EDT event throughput: one producer posting
// no-op events to the dispatch loop, the quantity that bounds how fast an
// event-driven application can consume its queue.
func BenchmarkSchedEDTPump(b *testing.B) {
	reg := &gid.Registry{}
	l := eventloop.New("edt", reg)
	l.Start()
	defer l.Stop()
	var done atomic.Int64
	body := func() { done.Add(1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Post(body)
	}
	drain(&done, int64(b.N))
}

// BenchmarkSchedEDTPingPong measures InvokeAndWait round-trip latency against
// the EDT: the cross-thread "update the GUI and wait" primitive.
func BenchmarkSchedEDTPingPong(b *testing.B) {
	reg := &gid.Registry{}
	l := eventloop.New("edt", reg)
	l.Start()
	defer l.Stop()
	block := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.InvokeAndWait(block); err != nil {
			b.Fatal(err)
		}
	}
}
