// Command report regenerates the complete experimental report — every
// figure of the paper plus this reproduction's extensions — as Markdown on
// stdout. It is the one-command path from a fresh checkout to an
// EXPERIMENTS.md-style document:
//
//	go run ./cmd/report > report.md            # quick (CI-scale) run
//	go run ./cmd/report -scale full > report.md
//
// The quick scale completes in roughly a minute on two cores; full runs
// the Evaluation A sweep at paper-like loads and takes several minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/evaluation"
	"repro/internal/gid"
	"repro/internal/httpserver"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

type scaleCfg struct {
	handler   time.Duration
	events    int
	rates     []float64
	workersB  []int
	usersB    int
	reqsB     int
	kbytesB   int
	clientsC  int
	messagesC int
}

func scales(name string) (scaleCfg, error) {
	switch name {
	case "quick":
		return scaleCfg{
			handler: 8 * time.Millisecond, events: 15,
			rates:    []float64{20, 60, 100},
			workersB: []int{1, 2, 4}, usersB: 16, reqsB: 2, kbytesB: 32,
			clientsC: 4, messagesC: 6,
		}, nil
	case "full":
		return scaleCfg{
			handler: 20 * time.Millisecond, events: 30,
			rates:    workload.Loads(),
			workersB: []int{1, 2, 4, 8, 16}, usersB: 50, reqsB: 3, kbytesB: 128,
			clientsC: 8, messagesC: 12,
		}, nil
	default:
		return scaleCfg{}, fmt.Errorf("unknown scale %q (quick|full)", name)
	}
}

func main() {
	scaleName := flag.String("scale", "quick", "quick or full")
	flag.Parse()
	sc, err := scales(*scaleName)
	if err != nil {
		fail(err)
	}

	fmt.Printf("# Reproduction report (%s scale)\n\ngenerated %s\n", *scaleName,
		time.Now().Format(time.RFC3339))

	figure1()
	figures78(sc)
	figure9(sc)
	evalC(sc)
	spanTrees()
}

func figure1() {
	fmt.Println("\n## Figure 1 — single- vs multi-threaded event processing")
	for _, multi := range []bool{false, true} {
		recs, err := evaluation.RunFigure1(evaluation.Figure1Config{
			Events: 3, HandlerCost: 20 * time.Millisecond, Multithreaded: multi, Workers: 3,
		})
		if err != nil {
			fail(err)
		}
		mode := "single-threaded (panel i)"
		if multi {
			mode = "multi-threaded (panel ii)"
		}
		fmt.Printf("\n%s:\n\n```\n%s```\n", mode, evaluation.RenderTimeline(recs, 56))
	}
}

func figures78(sc scaleCfg) {
	fmt.Println("\n## Figures 7-8 — response time (ms) vs request load")
	for _, kern := range kernels.PaperNames() {
		factory := kernels.Factories()[kern]
		size := kernels.Calibrate(factory, kernels.TestSize(kern), sc.handler)
		fmt.Printf("\n### %s (size %d)\n\n", kern, size)
		fmt.Print("| approach \\ load |")
		for _, r := range sc.rates {
			fmt.Printf(" %.0f |", r)
		}
		fmt.Print("\n|---|")
		for range sc.rates {
			fmt.Print("---|")
		}
		fmt.Println()
		for _, a := range evaluation.Approaches() {
			fmt.Printf("| %s |", a)
			for _, rate := range sc.rates {
				res, err := evaluation.RunEvalA(evaluation.EvalAConfig{
					Kernel: kern, KernelSize: size, Approach: a,
					Rate: rate, Events: sc.events,
				})
				if err != nil {
					fail(err)
				}
				fmt.Printf(" %.1f |", float64(res.Response.Mean)/float64(time.Millisecond))
			}
			fmt.Println()
		}
	}
}

func figure9(sc scaleCfg) {
	fmt.Println("\n## Figure 9 — HTTP throughput (responses/sec) vs worker threads")
	fmt.Print("\n| series \\ workers |")
	for _, w := range sc.workersB {
		fmt.Printf(" %d |", w)
	}
	fmt.Print("\n|---|")
	for range sc.workersB {
		fmt.Print("---|")
	}
	fmt.Println()
	var chartLabels []string
	var chartValues []float64
	for _, series := range []struct {
		mode httpserver.Mode
		omp  int
	}{{httpserver.Jetty, 1}, {httpserver.Pyjama, 1}, {httpserver.Jetty, 4}, {httpserver.Pyjama, 4}} {
		results, err := evaluation.Figure9Series(series.mode, series.omp, sc.workersB,
			sc.kbytesB*1024, sc.usersB, sc.reqsB)
		if err != nil {
			fail(err)
		}
		fmt.Printf("| %s |", results[0].Label())
		for _, r := range results {
			fmt.Printf(" %.1f |", r.Throughput)
		}
		fmt.Println()
		best := results[0]
		for _, r := range results {
			if r.Throughput > best.Throughput {
				best = r
			}
		}
		chartLabels = append(chartLabels, best.Label())
		chartValues = append(chartValues, best.Throughput)
	}
	fmt.Printf("\npeak throughput per series:\n\n```\n%s```\n",
		metrics.BarChart(chartLabels, chartValues, " r/s", 40))
}

func evalC(sc scaleCfg) {
	fmt.Println("\n## Extension — framework universality (netloop message server)")
	fmt.Println("\n| handler | round-trip mean | round-trip p90 | dispatch busy mean |")
	fmt.Println("|---|---|---|---|")
	for _, offload := range []bool{false, true} {
		res, err := evaluation.RunEvalC(evaluation.EvalCConfig{
			Kernel: "crypt",
			KernelSize: kernels.Calibrate(kernels.Factories()["crypt"],
				kernels.TestSize("crypt"), sc.handler),
			Offload: offload, Workers: 4,
			Clients: sc.clientsC, MessagesPerClient: sc.messagesC,
		})
		if err != nil {
			fail(err)
		}
		name := "inline dispatch"
		if offload {
			name = "pyjama offload"
		}
		fmt.Printf("| %s | %v | %v | %v |\n", name,
			res.RoundTrip.Mean.Round(time.Microsecond),
			res.RoundTrip.P90.Round(time.Microsecond),
			res.DispatchBusy.Mean.Round(time.Microsecond))
	}
}

// spanTrees demonstrates the causal-span tracer: a small two-target scenario
// (nested invoke, inline fast path, await barrier with helping) is captured
// into a trace ring and rendered as the reconstructed span tree plus its
// aggregate summary — the same data `httpbench -trace` exports for Perfetto.
func spanTrees() {
	fmt.Println("\n## Extension — causal span trace of one dispatch chain")
	buf := trace.NewBuffer(4096)
	defer trace.Use(buf)()

	var reg gid.Registry
	rt := core.NewRuntime(&reg)
	defer rt.Shutdown()
	alpha, err := rt.CreateWorker("alpha", 1)
	if err != nil {
		fail(err)
	}
	if _, err := rt.CreateWorker("beta", 2); err != nil {
		fail(err)
	}

	_, err = rt.Invoke("alpha", core.Wait, func() {
		// Inline fast path: we are already on alpha.
		_, _ = rt.Invoke("alpha", core.Wait, func() {}) //ompvet:ignore blockguard same-target wait is the Algorithm 1 inline fast path, it cannot block
		// Await barrier: help a queued alpha task while beta computes.
		helped := make(chan struct{})
		go func() { alpha.Post(func() { close(helped) }) }()
		_, _ = rt.Invoke("beta", core.Await, func() {
			<-helped
			time.Sleep(2 * time.Millisecond)
		})
	})
	if err != nil {
		fail(err)
	}

	tree := trace.BuildTree(buf.Snapshot())
	fmt.Printf("\n```\n%s```\n", tree.String())
	fmt.Printf("\n```\n%s```\n", tree.Summarize())
	fmt.Println("\nCapture the same data from a live run with `httpbench -trace out.json`")
	fmt.Println("and open it at https://ui.perfetto.dev; scrape per-target histograms from")
	fmt.Println("the server's `/metrics` endpoint in Prometheus text format.")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "report: %v\n", err)
	os.Exit(1)
}
