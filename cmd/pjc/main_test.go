package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExpandDirs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.go", "b.go", "notgo.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("package x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	single := filepath.Join(dir, "a.go")

	out, err := expandDirs([]string{single, dir})
	if err != nil {
		t.Fatal(err)
	}
	// a.go passed explicitly, plus a.go and b.go from the directory; the
	// .txt file and the subdirectory are skipped.
	if len(out) != 3 {
		t.Fatalf("expanded = %v", out)
	}
	if out[0] != single {
		t.Fatalf("explicit file not preserved first: %v", out)
	}
	for _, f := range out[1:] {
		if filepath.Ext(f) != ".go" {
			t.Fatalf("non-go file expanded: %v", out)
		}
	}
	if _, err := expandDirs([]string{filepath.Join(dir, "missing.go")}); err == nil {
		t.Fatal("missing path accepted")
	}
}
