// Command pjc is the source-to-source compiler of the reproduction — the
// counterpart of the Pyjama compiler. It rewrites Go files containing
// //#omp directive comments into calls to the runtime:
//
//	pjc file.go            translate one file to stdout
//	pjc -w file.go ...     rewrite files in place
//	pjc -o out.go file.go  translate one file to out.go
//	pjc -check file.go ... parse and validate directives only
//	pjc -vet file.go ...   run directivelint + waitgraph before translating
//
// Exits non-zero on the first error. With -vet, the directivelint and
// waitgraph analysis passes run over the inputs first (syntactically — no
// type information is required), and any finding stops the translation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/directivelint"
	"repro/internal/analysis/waitgraph"
	"repro/internal/transform"
)

func main() {
	var (
		write   = flag.Bool("w", false, "write results back to the source files")
		out     = flag.String("o", "", "write output to this file (single input only)")
		check   = flag.Bool("check", false, "validate directives without emitting code")
		vet     = flag.Bool("vet", false, "run directivelint and waitgraph over the inputs before translating")
		pyjamaP = flag.String("pyjama", "", "import path of the pyjama runtime facade")
		ompP    = flag.String("omp", "", "import path of the omp substrate")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pjc [-w | -o out.go | -check] file.go ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *out != "" && len(files) != 1 {
		fmt.Fprintln(os.Stderr, "pjc: -o requires exactly one input file")
		os.Exit(2)
	}
	opts := transform.Options{PyjamaImport: *pyjamaP, OmpImport: *ompP}

	files, err := expandDirs(files)
	if err != nil {
		fail(err)
	}
	if *out != "" && len(files) != 1 {
		fmt.Fprintln(os.Stderr, "pjc: -o requires exactly one input file")
		os.Exit(2)
	}

	if *vet {
		if n := runVet(files); n > 0 {
			fmt.Fprintf(os.Stderr, "pjc: vet: %d issue(s); not translating\n", n)
			os.Exit(1)
		}
	}

	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			fail(err)
		}
		dst, err := transform.File(src, name, opts)
		if err != nil {
			fail(err)
		}
		switch {
		case *check:
			fmt.Fprintf(os.Stderr, "pjc: %s: ok\n", name)
		case *write:
			if err := os.WriteFile(name, dst, 0o644); err != nil {
				fail(err)
			}
		case *out != "":
			if err := os.WriteFile(*out, dst, 0o644); err != nil {
				fail(err)
			}
		default:
			os.Stdout.Write(dst)
		}
	}
}

// expandDirs replaces directory arguments with the .go files they contain
// (non-recursive, like gofmt's directory handling but one level).
func expandDirs(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			out = append(out, filepath.Join(a, e.Name()))
		}
	}
	return out, nil
}

// runVet parses the inputs (no type-checking — the files may not compile
// yet) and runs the syntactic passes, printing findings to stderr. Ignores
// run in non-strict mode: an //ompvet:ignore aimed at one of the typed
// passes cmd/ompvet runs is left alone rather than reported as unknown.
func runVet(files []string) int {
	pkg, err := analysis.ParseFiles(files)
	if err != nil {
		fail(err)
	}
	findings, err := analysis.RunPackage(pkg,
		[]*analysis.Analyzer{directivelint.Analyzer, waitgraph.Analyzer}, false)
	if err != nil {
		fail(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	return len(findings)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pjc: %v\n", err)
	os.Exit(1)
}
