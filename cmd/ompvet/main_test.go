package main

import "testing"

// TestRepositoryIsClean is the regression gate for satellite fixes: the
// whole module must stay free of ompvet diagnostics. Any new off-EDT widget
// write, EDT-blocking call, wait cycle, or malformed directive anywhere in
// the repository fails this test.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	if code := run([]string{"repro/..."}); code != 0 {
		t.Fatalf("ompvet found issues in the repository (exit %d); run `go run ./cmd/ompvet ./...` for the list", code)
	}
}

func TestSelectPasses(t *testing.T) {
	if as, err := selectPasses(""); err != nil || len(as) != len(all) {
		t.Fatalf("default selection: %v, %d passes", err, len(as))
	}
	as, err := selectPasses("waitgraph, directivelint")
	if err != nil || len(as) != 2 {
		t.Fatalf("subset selection: %v, %d passes", err, len(as))
	}
	if as[0].Name != "waitgraph" || as[1].Name != "directivelint" {
		t.Fatalf("subset selection order: %s, %s", as[0].Name, as[1].Name)
	}
	if _, err := selectPasses("nosuch"); err == nil {
		t.Fatal("unknown pass accepted")
	}
	if _, err := selectPasses(","); err == nil {
		t.Fatal("empty selection accepted")
	}
}
