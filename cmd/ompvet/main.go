// Command ompvet is the multichecker for the event-driven OpenMP runtime:
// it runs the internal/analysis passes over Go packages and exits non-zero
// when any diagnostic survives //ompvet:ignore suppression.
//
// Usage:
//
//	ompvet [-passes list] [-callgraph] [packages]
//
// Packages default to ./... and accept the usual go-command patterns. The
// passes are:
//
//	edtconfine    confined gui widget mutations off the event-dispatch thread
//	blockguard    blocking operations inside EDT / serial-target blocks
//	capture       cross-context writes to closure-captured variables
//	waitgraph     cycles and undefined tags in the name_as/wait graph
//	directivelint //#omp directive syntax, clause conflicts, attachment
//
// -callgraph prints the interprocedural machinery instead of running the
// passes: every function's bounded-depth effect summary (what it can
// block on, mutate, or dispatch, through which helper chains) and every
// capture by a dispatched block. Its output is diagnostic, not failing —
// the exit status is always 0 unless loading fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/blockguard"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/capture"
	"repro/internal/analysis/directivelint"
	"repro/internal/analysis/edtconfine"
	"repro/internal/analysis/waitgraph"
)

var all = []*analysis.Analyzer{
	blockguard.Analyzer,
	capture.Analyzer,
	directivelint.Analyzer,
	edtconfine.Analyzer,
	waitgraph.Analyzer,
}

// debugAnalyzers power -callgraph: they describe the interprocedural
// analysis rather than report violations.
var debugAnalyzers = []*analysis.Analyzer{
	callgraph.Analyzer,
	capture.DebugAnalyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ompvet", flag.ExitOnError)
	passList := fs.String("passes", "", "comma-separated pass names to run (default: all)")
	listOnly := fs.Bool("list", false, "list the available passes and exit")
	showGraph := fs.Bool("callgraph", false, "print call-graph effect summaries and closure captures instead of running the passes")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ompvet [-passes list] [-callgraph] [packages]\n\npasses:\n")
		for _, a := range all {
			fmt.Fprintf(fs.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectPasses(*passList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ompvet: %v\n", err)
		return 2
	}
	strict := true
	if *showGraph {
		// Summaries and captures are descriptions, not violations: print
		// them without failing, and without consuming ignore comments
		// (strict=false keeps unused //ompvet:ignore quiet too).
		analyzers, strict = debugAnalyzers, false
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ompvet: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(cwd, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ompvet: %v\n", err)
		return 2
	}

	bad := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// Type errors degrade the typed passes but do not fail the run:
			// go build owns compile errors, ompvet owns concurrency ones.
			fmt.Fprintf(os.Stderr, "ompvet: warning: %s: %v\n", pkg.Path, terr)
		}
		findings, err := analysis.RunPackage(pkg, analyzers, strict)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ompvet: %v\n", err)
			return 2
		}
		for _, f := range findings {
			fmt.Println(f.String())
			bad++
		}
	}
	if *showGraph {
		return 0
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "ompvet: %d issue(s)\n", bad)
		return 1
	}
	return 0
}

// selectPasses resolves the -passes flag against the registry.
func selectPasses(list string) ([]*analysis.Analyzer, error) {
	if list == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no passes selected")
	}
	return out, nil
}
