// Command edtbench regenerates Figures 7-8 of the paper: average event
// response time versus request load for each Java Grande kernel, comparing
// the six handler strategies (sequential, synchronous parallel,
// SwingWorker, ExecutorService, Pyjama async, Pyjama async parallel).
//
// The kernel size is calibrated so one sequential execution takes -handler
// on this machine (the paper's handlers are in the hundreds-of-milliseconds
// regime; the default here is smaller so a full sweep completes quickly —
// raise -handler and -events for a paper-scale run).
//
// Example:
//
//	edtbench -kernels crypt,series -rates 10,20,50,100 -events 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/evaluation"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		kernelList   = flag.String("kernels", strings.Join(kernels.PaperNames(), ","), "comma-separated kernel families")
		approachList = flag.String("approaches", joinApproaches(evaluation.Approaches()), "comma-separated handler strategies")
		rateList     = flag.String("rates", "10,20,30,40,50,60,70,80,90,100", "comma-separated request loads (events/sec)")
		events       = flag.Int("events", 30, "events fired per run")
		handler      = flag.Duration("handler", 10*time.Millisecond, "target sequential kernel duration (calibrated)")
		workers      = flag.Int("workers", 3, "background worker pool size")
		ompThreads   = flag.Int("omp", 3, "team size for the *parallel strategies")
		pattern      = flag.String("pattern", "constant", "arrival pattern: constant|poisson|burst")
		timeout      = flag.Duration("timeout", 5*time.Minute, "per-run timeout")
		figure1      = flag.Bool("figure1", false, "print the Figure 1 timelines (single- vs multi-threaded event processing) and exit")
		traceOut     = flag.String("trace", "", "capture causal spans and write a Chrome/Perfetto trace-event JSON file here")
	)
	flag.Parse()

	if *traceOut != "" {
		buf := trace.NewBuffer(1 << 18)
		trace.SetGlobal(buf)
		defer writeTrace(*traceOut, buf)
	}

	if *figure1 {
		printFigure1()
		return
	}

	pat, err := parsePattern(*pattern)
	if err != nil {
		fail(err)
	}
	rates, err := parseFloats(*rateList)
	if err != nil {
		fail(err)
	}
	kerns := strings.Split(*kernelList, ",")
	var approaches []evaluation.Approach
	for _, a := range strings.Split(*approachList, ",") {
		approaches = append(approaches, evaluation.Approach(strings.TrimSpace(a)))
	}

	fmt.Printf("edtbench: Evaluation A (Figures 7-8) — avg response time (ms) vs request load\n")
	fmt.Printf("events/run=%d  handler target=%v  workers=%d  omp=%d  pattern=%s\n\n",
		*events, *handler, *workers, *ompThreads, pat)

	for _, kern := range kerns {
		kern = strings.TrimSpace(kern)
		factory, ok := kernels.Factories()[kern]
		if !ok {
			fail(fmt.Errorf("unknown kernel %q", kern))
		}
		size := kernels.Calibrate(factory, kernels.TestSize(kern), *handler)
		fmt.Printf("== kernel %s (size %d, ~%v sequential) ==\n", kern, size, *handler)
		// Header row.
		fmt.Printf("%-24s", "approach \\ load")
		for _, r := range rates {
			fmt.Printf("%10.0f", r)
		}
		fmt.Println()
		for _, a := range approaches {
			fmt.Printf("%-24s", a)
			for _, rate := range rates {
				res, err := evaluation.RunEvalA(evaluation.EvalAConfig{
					Kernel: kern, KernelSize: size, Approach: a,
					Rate: rate, Events: *events, Pattern: pat,
					Workers: *workers, OMPThreads: *ompThreads, Timeout: *timeout,
				})
				if err != nil {
					fail(err)
				}
				fmt.Printf("%10.2f", float64(res.Response.Mean)/float64(time.Millisecond))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// printFigure1 reproduces Figure 1: three requests under single-threaded
// (panel i) and multi-threaded (panel ii) event processing.
func printFigure1() {
	fmt.Println("Figure 1(i): single-threaded event processing — later requests queue")
	recs, err := evaluation.RunFigure1(evaluation.Figure1Config{
		Events: 3, HandlerCost: 30 * time.Millisecond,
	})
	if err != nil {
		fail(err)
	}
	fmt.Print(evaluation.RenderTimeline(recs, 60))
	fmt.Println("\nFigure 1(ii): multi-threaded event processing — handlers overlap")
	recs, err = evaluation.RunFigure1(evaluation.Figure1Config{
		Events: 3, HandlerCost: 30 * time.Millisecond, Multithreaded: true, Workers: 3,
	})
	if err != nil {
		fail(err)
	}
	fmt.Print(evaluation.RenderTimeline(recs, 60))
}

// writeTrace exports the captured span ring as trace-event JSON (open at
// https://ui.perfetto.dev) with a one-line summary on stderr.
func writeTrace(path string, buf *trace.Buffer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edtbench: trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := trace.ExportTraceEventBuffer(f, buf); err != nil {
		fmt.Fprintf(os.Stderr, "edtbench: trace export: %v\n", err)
		return
	}
	tree := trace.BuildTree(buf.Snapshot())
	fmt.Fprintf(os.Stderr, "edtbench: wrote %d events (%d spans, depth %d, %d overwritten) to %s — open at https://ui.perfetto.dev\n",
		buf.Len(), len(tree.ByID), tree.Depth(), buf.Overwritten(), path)
}

func joinApproaches(as []evaluation.Approach) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePattern(s string) (workload.Pattern, error) {
	switch s {
	case "constant":
		return workload.Constant, nil
	case "poisson":
		return workload.Poisson, nil
	case "burst":
		return workload.Burst, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "edtbench: %v\n", err)
	os.Exit(1)
}
