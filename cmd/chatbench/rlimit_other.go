//go:build !linux && !darwin

package main

// clampConns is a no-op where the reactor (and so the bench) cannot run
// anyway; main exits before dialing.
func clampConns(requested int) int { return requested }
