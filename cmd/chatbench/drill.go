// The survivability drill (-chaos): where the default bench proves the
// reactor's fan-out scale, this proves its failure posture. A supervised
// chat server is measured healthy, then hit with a bounded storm — poll-
// goroutine kills at the dispatch seam, fd-level faults (short writes,
// spurious EAGAIN), slowloris connections, and an over-cap connection
// burst — and measured again after recovering. The run ends with a
// deadline-bounded graceful drain, and a control: the same kill against an
// unsupervised server, which stays dead and is flagged by the watchdog.
//
// CHAOS_SEED pins the injector schedule (1337 by default in CI), so a
// failing drill replays.
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/gid"
	"repro/internal/netloop"
	"repro/internal/supervise"
)

// DrillReport is the JSON shape the -chaos run writes.
type DrillReport struct {
	Timestamp    string `json:"timestamp"`
	Conns        int    `json:"conns"`
	Rooms        int    `json:"rooms"`
	Rounds       int    `json:"rounds"`
	PayloadBytes int    `json:"payload_bytes"`

	BeforeMsgsPerSec float64 `json:"before_msgs_per_sec"`
	AfterMsgsPerSec  float64 `json:"after_msgs_per_sec"`
	RecoveryRatio    float64 `json:"recovery_ratio"`

	Kills           int64 `json:"kills_injected"`
	LoopCrashes     int64 `json:"loop_crashes"`
	FDFaults        int64 `json:"fd_faults_injected"`
	SlowlorisOpened int   `json:"slowloris_opened"`
	SlowlorisReaped int   `json:"slowloris_reaped"`
	DeadlineCloses  int64 `json:"deadline_closes"`
	ConnShed        int64 `json:"conn_shed"`

	DrainSeconds float64 `json:"drain_seconds"`
	ForceCloses  int64   `json:"force_closes"`

	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`

	BaselineWatchdogDown bool `json:"baseline_watchdog_down"`
}

// drillClients is one phase's cohort of plain blocking clients: a reader
// goroutine per connection counts joins and deliveries.
type drillClients struct {
	conns     []net.Conn
	joined    atomic.Int64
	delivered atomic.Int64
	wg        sync.WaitGroup
}

func connectClients(addr string, n int) (*drillClients, error) {
	d := &drillClients{}
	for i := 0; i < n; i++ {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			d.close()
			return nil, fmt.Errorf("dial %d/%d: %w", i, n, err)
		}
		d.conns = append(d.conns, c)
		d.wg.Add(1)
		go func(c net.Conn) {
			defer d.wg.Done()
			sc := bufio.NewScanner(c)
			for sc.Scan() {
				switch {
				case strings.HasPrefix(sc.Text(), "joined "):
					d.joined.Add(1)
				case strings.HasPrefix(sc.Text(), "say "):
					d.delivered.Add(1)
				}
			}
		}(c)
	}
	return d, nil
}

func (d *drillClients) close() {
	for _, c := range d.conns {
		c.Close()
	}
	d.wg.Wait()
}

// joinRooms spreads the cohort across rooms and waits for every ack.
func (d *drillClients) joinRooms(nRooms int) ([][]net.Conn, error) {
	members := make([][]net.Conn, nRooms)
	for i, c := range d.conns {
		r := i % nRooms
		members[r] = append(members[r], c)
		if _, err := fmt.Fprintf(c, "join room%d\n", r); err != nil {
			return nil, err
		}
	}
	want := int64(len(d.conns))
	if err := waitFor("joins acknowledged", func() bool { return d.joined.Load() == want }); err != nil {
		return nil, err
	}
	return members, nil
}

// measureRounds runs the broadcast rounds and returns delivered msgs/sec.
func (d *drillClients) measureRounds(members [][]net.Conn, rounds, payload int) (float64, error) {
	var expected int64
	for _, m := range members {
		expected += int64(len(m) * rounds)
	}
	base := d.delivered.Load()
	pad := strings.Repeat("x", payload)
	start := time.Now()
	for round := 0; round < rounds; round++ {
		for r, m := range members {
			if len(m) == 0 {
				continue
			}
			speaker := m[round%len(m)]
			if _, err := fmt.Fprintf(speaker, "say room%d %d %s\n", r, time.Now().UnixNano(), pad); err != nil {
				return 0, fmt.Errorf("round %d speaker: %w", round, err)
			}
		}
	}
	if err := waitFor("broadcasts delivered", func() bool {
		return d.delivered.Load()-base == expected
	}); err != nil {
		return 0, fmt.Errorf("%w (delivered %d/%d)", err, d.delivered.Load()-base, expected)
	}
	return float64(expected) / time.Since(start).Seconds(), nil
}

func runDrill(requested, nRooms, rounds, payload int) (*DrillReport, error) {
	conns := clampConns(requested)
	// The drill prices survivability, not fan-out records: cap the cohort
	// so the storm phases stay fast and deterministic.
	if conns > 1024 {
		conns = 1024
	}
	if nRooms > conns {
		nRooms = conns
	}
	const (
		slowlorisConns = 16
		capMargin      = 32 // admission headroom above the cohort
	)
	inj := chaos.New(chaos.SeedFromEnv(1337),
		// Bounded kill storm at the readiness-dispatch seam: one kill per
		// 40 events, three total, then the storm is spent.
		chaos.Rule{Target: "poll", Action: chaos.Kill, Nth: 40, Count: 3},
		// fd-level noise on its own target so its schedule is independent
		// of the kill schedule.
		chaos.Rule{Target: "fd", Action: chaos.ShortWrite, Rate: 0.05},
		chaos.Rule{Target: "fd", Action: chaos.SpuriousEAGAIN, Rate: 0.01},
	)

	reg := &gid.Registry{}
	srv := netloop.New("chat", reg)
	if err := srv.EnableSupervisedReactor(supervise.Options{
		MaxRestarts:    10,
		Window:         2 * time.Second,
		BackoffInitial: time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}); err != nil {
		return nil, fmt.Errorf("EnableSupervisedReactor: %w", err)
	}
	defer srv.Stop()
	srv.SetIdleDeadline(time.Second) // drill-fast slowloris reaping
	srv.SetMaxConns(conns+capMargin, "BUSY")

	roomTable := make(map[string][]*netloop.Client, nRooms)
	srv.HandleFunc(func(c *netloop.Client, line string) {
		switch {
		case strings.HasPrefix(line, "join "):
			room := line[len("join "):]
			roomTable[room] = append(roomTable[room], c)
			c.Send("joined " + room)
		case strings.HasPrefix(line, "say "):
			room, _, _ := strings.Cut(line[len("say "):], " ")
			for _, m := range roomTable[room] {
				m.Send(line)
			}
		case line == "reset":
			// Drop stale (crash-killed) members between phases so the
			// recovered cohort is not fanning out to ghosts.
			roomTable = make(map[string][]*netloop.Client, nRooms)
			c.Send("resetok")
		}
	})
	sup := srv.SupervisedReactor()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	rep := &DrillReport{
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		Conns:            conns,
		Rooms:            nRooms,
		Rounds:           rounds,
		PayloadBytes:     payload,
		SlowlorisOpened:  slowlorisConns,
		GoroutinesBefore: runtime.NumGoroutine(),
	}

	// --- phase A: healthy throughput ---------------------------------------
	fmt.Fprintf(os.Stderr, "drill: phase A — %d conns, %d rooms, healthy rounds\n", conns, nRooms)
	cohortA, err := connectClients(addr, conns)
	if err != nil {
		return nil, err
	}
	membersA, err := cohortA.joinRooms(nRooms)
	if err != nil {
		return nil, err
	}
	rep.GoroutinesBefore = runtime.NumGoroutine()
	if rep.BeforeMsgsPerSec, err = cohortA.measureRounds(membersA, rounds, payload); err != nil {
		return nil, fmt.Errorf("phase A: %w", err)
	}

	// --- phase B: the storm -------------------------------------------------
	fmt.Fprintln(os.Stderr, "drill: phase B — kill storm, fd faults, slowloris")
	sup.SetInterceptor(inj.NetInterceptor("poll"))
	sup.SetIOInterceptor(inj.FDInterceptor("fd"))

	var loris []net.Conn
	for i := 0; i < slowlorisConns; i++ {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("slowloris dial: %w", err)
		}
		loris = append(loris, c)
	}
	// Drive readiness events until the bounded kill storm runs its course.
	// Individual round trips may die mid-flight; that is the point.
	stormDeadline := time.Now().Add(60 * time.Second)
	for inj.Injected(chaos.Kill) < 3 {
		if time.Now().After(stormDeadline) {
			return nil, fmt.Errorf("storm stalled: %d/3 kills injected", inj.Injected(chaos.Kill))
		}
		if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
			fmt.Fprintln(c, "say room0 0 storm-probe")
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			bufio.NewScanner(c).Scan()
			c.Close()
		}
	}
	// Every slowloris socket must be shed — reaped by the idle deadline or
	// failed over a crash; either way it cannot hold its slot.
	reaped := 0
	for _, c := range loris {
		c.SetReadDeadline(time.Now().Add(15 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err != nil {
			reaped++
		}
		c.Close()
	}
	rep.SlowlorisReaped = reaped
	if reaped < slowlorisConns {
		return nil, fmt.Errorf("only %d/%d slowloris conns shed", reaped, slowlorisConns)
	}

	// --- recovery ------------------------------------------------------------
	fmt.Fprintln(os.Stderr, "drill: storm spent — waiting for recovery")
	inj.SetEnabled(false)
	if err := waitFor("post-storm round trip", func() bool {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return false
		}
		defer c.Close()
		fmt.Fprintln(c, "reset")
		c.SetReadDeadline(time.Now().Add(time.Second))
		sc := bufio.NewScanner(c)
		return sc.Scan() && sc.Text() == "resetok"
	}); err != nil {
		return nil, fmt.Errorf("server never recovered: %w", err)
	}
	if err := waitFor("supervision healthy", func() bool {
		return sup.Health().StatusValue() == supervise.Healthy
	}); err != nil {
		return nil, err
	}
	cohortA.close() // crash-killed remnants; their goroutines exit on EOF

	// --- phase C: recovered throughput ---------------------------------------
	fmt.Fprintln(os.Stderr, "drill: phase C — recovered rounds")
	cohortC, err := connectClients(addr, conns)
	if err != nil {
		return nil, fmt.Errorf("phase C reconnect: %w", err)
	}
	membersC, err := cohortC.joinRooms(nRooms)
	if err != nil {
		return nil, fmt.Errorf("phase C join: %w", err)
	}
	if rep.AfterMsgsPerSec, err = cohortC.measureRounds(membersC, rounds, payload); err != nil {
		return nil, fmt.Errorf("phase C: %w", err)
	}
	rep.RecoveryRatio = rep.AfterMsgsPerSec / rep.BeforeMsgsPerSec

	// --- admission probe: the cap sheds with a busy line ---------------------
	fmt.Fprintf(os.Stderr, "drill: admission probe (live=%d cap=%d shed-so-far=%d)\n",
		srv.ClientCount(), conns+capMargin, srv.ConnShed())
	// Dial the whole burst first: the idle deadline reaps silent admitted
	// conns after a second, so probing one-at-a-time would free each slot
	// before the next dial and never cross the cap.
	var burst []net.Conn
	for i := 0; i < capMargin+1; i++ {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			break
		}
		burst = append(burst, c)
	}
	shedSeen := false
	for _, c := range burst {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		sc := bufio.NewScanner(c)
		if sc.Scan() && sc.Text() == "BUSY" {
			shedSeen = true
			break
		}
	}
	for _, c := range burst {
		c.Close()
	}
	if !shedSeen {
		return nil, fmt.Errorf("connection burst past the cap was never shed")
	}

	rep.Kills = inj.Injected(chaos.Kill)
	rep.FDFaults = inj.Injected(chaos.ShortWrite) + inj.Injected(chaos.SpuriousEAGAIN)
	rep.LoopCrashes = sup.RStats().LoopCrashes.Value()
	rep.DeadlineCloses = srv.DeadlineCloses()
	rep.ConnShed = srv.ConnShed()

	// --- graceful drain -------------------------------------------------------
	fmt.Fprintln(os.Stderr, "drill: graceful drain")
	cohortC.close()
	start := time.Now()
	srv.DrainStop(2 * time.Second)
	rep.DrainSeconds = time.Since(start).Seconds()
	rep.ForceCloses = sup.RStats().ForceCloses.Value()
	if c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		c.Close()
		return nil, fmt.Errorf("drained server still accepting")
	}
	rep.GoroutinesAfter = runtime.NumGoroutine()

	// --- control: unsupervised baseline dies and the watchdog sees it --------
	down, err := baselineWatchdog()
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	rep.BaselineWatchdogDown = down
	if !down {
		return nil, fmt.Errorf("watchdog never flagged the unsupervised baseline down")
	}
	return rep, nil
}

// baselineWatchdog runs the control experiment: one kill against a bare
// (unsupervised) reactor server. Nothing restarts it; the watchdog's probe
// must read it as down.
func baselineWatchdog() (bool, error) {
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Target: "poll", Action: chaos.Kill, Nth: 1, Count: 1})
	s := netloop.New("bare", &gid.Registry{})
	defer s.Stop()
	if err := s.EnableReactor(); err != nil {
		return false, err
	}
	s.HandleFunc(func(c *netloop.Client, line string) { c.Send("echo:" + line) })
	r := s.Reactor()
	r.SetInterceptor(inj.NetInterceptor("poll"))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return false, err
	}

	w := supervise.NewWatchdog(5 * time.Millisecond)
	w.Watch("bare", r.AsExecutor(), 25*time.Millisecond)
	w.Start()
	defer w.Stop()

	// First readiness event trips the kill.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		fmt.Fprintln(c, "hello?")
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		bufio.NewScanner(c).Scan()
		c.Close()
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if w.Health()["bare"].LivenessValue() == supervise.LiveDown {
			return true, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false, nil
}
