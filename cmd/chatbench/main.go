// chatbench is the reactor's fan-out proof: a websocket-style chat drill
// where every connection is a reactor registration instead of a goroutine.
// One netloop server on the reactor transport hosts R rooms; C client
// connections — themselves driven by a second reactor, so the whole bench
// is two poll goroutines plus the dispatch loop — join rooms and exchange
// broadcast rounds. Each round, one speaker per room sends a stamped
// message and the server fans it out to every room member.
//
// The drill is designed for 100k+ connections; the actual count is clamped
// to what RLIMIT_NOFILE allows for an in-process client+server pair (two
// descriptors per connection), and the report records the honest numbers.
//
// Measured and written to -out (default BENCH_net.json):
//
//   - end-to-end broadcast latency (client stamp → client receive), p50/p99;
//   - dispatch-queue delay on the server loop (readiness → handler start);
//   - delivered messages/second across the fan-out;
//   - heap allocations per delivered message (the hot path's footprint);
//   - goroutine count at steady state — the number that proves the
//     architecture: it stays flat as connections grow.
//
// With -baseline pointing at a pinned report (default bench/net_baseline.json),
// the run prints the throughput delta; -strict turns a drop past -tolerance
// into a non-zero exit for CI use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/eventloop"
	"repro/internal/gid"
	"repro/internal/netloop"
	"repro/internal/reactor"
)

// Report is the JSON shape written to -out and pinned as the baseline.
type Report struct {
	Timestamp      string        `json:"timestamp"`
	RequestedConns int           `json:"requested_conns"`
	Conns          int           `json:"conns"` // after the rlimit clamp
	Rooms          int           `json:"rooms"`
	Rounds         int           `json:"rounds"`
	PayloadBytes   int           `json:"payload_bytes"`
	Delivered      int64         `json:"delivered_msgs"`
	Seconds        float64       `json:"seconds"`
	MsgsPerSec     float64       `json:"msgs_per_sec"`
	E2EP50Micros   int64         `json:"e2e_p50_us"`
	E2EP99Micros   int64         `json:"e2e_p99_us"`
	QueueP50Micros int64         `json:"queue_p50_us"`
	QueueP99Micros int64         `json:"queue_p99_us"`
	AllocsPerMsg   float64       `json:"allocs_per_msg"`
	Goroutines     int           `json:"goroutines"`
	ServerStats    reactor.Stats `json:"server_reactor"`
	ClientStats    reactor.Stats `json:"client_reactor"`
}

// clientState is per-connection line reassembly, confined to the client
// reactor's poll goroutine.
type clientState struct {
	partial []byte
}

func main() {
	var (
		conns     = flag.Int("conns", 100000, "client connections (clamped to RLIMIT_NOFILE)")
		rooms     = flag.Int("rooms", 256, "chat rooms (fan-out groups)")
		rounds    = flag.Int("rounds", 5, "broadcast rounds per room")
		payload   = flag.Int("payload", 64, "padding bytes per message")
		out       = flag.String("out", "BENCH_net.json", "report path ('-' for stdout only)")
		baseline  = flag.String("baseline", "bench/net_baseline.json", "baseline report to compare against ('-' to skip)")
		tolerance = flag.Float64("tolerance", 0.5, "minimum acceptable msgs/sec as a fraction of baseline")
		strict    = flag.Bool("strict", false, "exit non-zero when throughput falls below tolerance*baseline")
		drill     = flag.Bool("chaos", false, "run the survivability drill instead of the fan-out bench (see drill.go)")
	)
	flag.Parse()
	if !reactor.Supported {
		fmt.Fprintln(os.Stderr, "chatbench: no reactor poller on this platform")
		os.Exit(1)
	}
	if *drill {
		rep, err := runDrill(*conns, *rooms, *rounds, *payload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chatbench: drill:", err)
			os.Exit(1)
		}
		buf, _ := json.MarshalIndent(rep, "", "  ")
		buf = append(buf, '\n')
		os.Stdout.Write(buf)
		if *out != "-" && *out != "BENCH_net.json" {
			if err := os.WriteFile(*out, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "chatbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	rep, err := run(*conns, *rooms, *rounds, *payload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chatbench:", err)
		os.Exit(1)
	}
	buf, _ := json.MarshalIndent(rep, "", "  ")
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chatbench:", err)
			os.Exit(1)
		}
	}
	if *baseline != "-" {
		if !compare(rep, *baseline, *tolerance) && *strict {
			os.Exit(1)
		}
	}
}

func run(requested, nRooms, rounds, payload int) (*Report, error) {
	conns := clampConns(requested)
	if conns < requested {
		fmt.Fprintf(os.Stderr,
			"chatbench: RLIMIT_NOFILE clamps the drill to %d connections (requested %d; the design target needs a raised fd limit)\n",
			conns, requested)
	}
	if nRooms > conns {
		nRooms = conns
	}
	reg := &gid.Registry{}

	// --- server: rooms live on the dispatch loop, no locks -----------------
	srv := netloop.New("chat", reg)
	if err := srv.EnableReactor(); err != nil {
		return nil, fmt.Errorf("EnableReactor: %w", err)
	}
	defer srv.Stop()
	// Production posture, in the measured path: every connection carries an
	// idle deadline and the accept path runs the admission gate. Neither
	// trips during a healthy run — the bench exists to price the checks.
	srv.SetIdleDeadline(30 * time.Second)
	srv.SetMaxConns(conns*2+64, "BUSY")
	roomTable := make(map[string][]*netloop.Client, nRooms)
	srv.HandleFunc(func(c *netloop.Client, line string) {
		switch {
		case strings.HasPrefix(line, "join "):
			room := line[len("join "):]
			roomTable[room] = append(roomTable[room], c)
			c.Send("joined " + room)
		case strings.HasPrefix(line, "say "):
			room, _, _ := strings.Cut(line[len("say "):], " ")
			for _, m := range roomTable[room] {
				m.Send(line) // fan-out: the measured hot path
			}
		}
	})

	// Dispatch-queue delay on the server loop, sampled by the observer
	// (runs on the loop goroutine; the slice needs no lock).
	queueSamples := make([]int64, 0, 1<<16)
	srv.Loop().SetObserver(func(d eventloop.DispatchInfo) {
		if d.Label == "msg" && len(queueSamples) < cap(queueSamples) {
			queueSamples = append(queueSamples, d.QueueDelay().Microseconds())
		}
	})

	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	// --- clients: one reactor for all of them ------------------------------
	cli, err := reactor.New("chatbench/clients", reg)
	if err != nil {
		return nil, err
	}
	defer cli.Stop()

	var joined, delivered atomic.Int64
	e2eSamples := make([]int64, 0, 1<<16) // client poll goroutine only
	onLine := func(line []byte) {
		switch {
		case strings.HasPrefix(string(line), "joined "):
			joined.Add(1)
		case strings.HasPrefix(string(line), "say "):
			n := delivered.Add(1)
			// Sample 1-in-8 to keep parse cost out of the hot path's face.
			if n%8 == 0 && len(e2eSamples) < cap(e2eSamples) {
				f := strings.Fields(string(line))
				if len(f) >= 3 {
					if stamp, err := strconv.ParseInt(f[2], 10, 64); err == nil {
						e2eSamples = append(e2eSamples, (time.Now().UnixNano()-stamp)/1e3)
					}
				}
			}
		}
	}
	handlers := reactor.HandlerFuncs{
		OnReadable: func(c *reactor.Conn, data []byte) {
			st := c.Context().(*clientState)
			buf := data
			if len(st.partial) > 0 {
				st.partial = append(st.partial, data...)
				buf = st.partial
			}
			for {
				i := strings.IndexByte(string(buf), '\n')
				if i < 0 {
					break
				}
				onLine(buf[:i])
				buf = buf[i+1:]
			}
			st.partial = append(st.partial[:0], buf...)
		},
	}

	clients := make([]*reactor.Conn, 0, conns)
	for i := 0; i < conns; i++ {
		c, err := cli.Dial(addr, handlers)
		if err != nil {
			return nil, fmt.Errorf("dial %d/%d: %w", i, conns, err)
		}
		c.SetContext(&clientState{})
		clients = append(clients, c)
	}

	// --- join phase --------------------------------------------------------
	members := make([][]*reactor.Conn, nRooms)
	for i, c := range clients {
		r := i % nRooms
		members[r] = append(members[r], c)
		if err := c.Write([]byte("join room" + strconv.Itoa(r) + "\n")); err != nil {
			return nil, err
		}
	}
	if err := waitFor("joins acknowledged", func() bool {
		return joined.Load() == int64(conns)
	}); err != nil {
		return nil, err
	}

	// Expected deliveries: every member of a room receives each of the
	// room's per-round broadcasts.
	var expected int64
	for _, m := range members {
		expected += int64(len(m) * rounds)
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	steadyGoroutines := runtime.NumGoroutine()

	// --- broadcast rounds --------------------------------------------------
	pad := strings.Repeat("x", payload)
	start := time.Now()
	for round := 0; round < rounds; round++ {
		for r, m := range members {
			if len(m) == 0 {
				continue
			}
			speaker := m[round%len(m)]
			line := fmt.Sprintf("say room%d %d %s\n", r, time.Now().UnixNano(), pad)
			if err := speaker.Write([]byte(line)); err != nil {
				return nil, fmt.Errorf("round %d speaker: %w", round, err)
			}
		}
	}
	if err := waitFor("broadcasts delivered", func() bool {
		return delivered.Load() == expected
	}); err != nil {
		return nil, fmt.Errorf("%w (delivered %d/%d)", err, delivered.Load(), expected)
	}
	elapsed := time.Since(start)

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	rep := &Report{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		RequestedConns: requested,
		Conns:          conns,
		Rooms:          nRooms,
		Rounds:         rounds,
		PayloadBytes:   payload,
		Delivered:      delivered.Load(),
		Seconds:        elapsed.Seconds(),
		MsgsPerSec:     float64(delivered.Load()) / elapsed.Seconds(),
		E2EP50Micros:   percentile(e2eSamples, 50),
		E2EP99Micros:   percentile(e2eSamples, 99),
		QueueP50Micros: percentile(queueSamples, 50),
		QueueP99Micros: percentile(queueSamples, 99),
		AllocsPerMsg:   float64(m1.Mallocs-m0.Mallocs) / float64(delivered.Load()),
		Goroutines:     steadyGoroutines,
		ServerStats:    srv.Reactor().Stats(),
		ClientStats:    cli.Stats(),
	}
	return rep, nil
}

// waitFor polls cond with a generous deadline; the bench fails loudly
// instead of hanging when a message goes missing.
func waitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(2 * time.Minute)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// percentile returns the p-th percentile of samples in place (µs).
func percentile(samples []int64, p int) int64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (len(samples) - 1) * p / 100
	return samples[idx]
}

// compare prints the throughput delta against a pinned baseline report.
// Returns false when the current run is below tolerance*baseline.
func compare(rep *Report, path string, tolerance float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chatbench: no baseline at %s (run with -out %s to pin one)\n", path, path)
		return true
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil || base.MsgsPerSec == 0 {
		fmt.Fprintf(os.Stderr, "chatbench: unreadable baseline %s\n", path)
		return true
	}
	ratio := rep.MsgsPerSec / base.MsgsPerSec
	fmt.Fprintf(os.Stderr, "chatbench: %.0f msgs/s vs baseline %.0f (%.2fx, %d vs %d conns)\n",
		rep.MsgsPerSec, base.MsgsPerSec, ratio, rep.Conns, base.Conns)
	if ratio < tolerance {
		fmt.Fprintf(os.Stderr, "chatbench: throughput below %.2fx of baseline\n", tolerance)
		return false
	}
	return true
}
