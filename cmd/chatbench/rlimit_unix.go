//go:build linux || darwin

package main

import "syscall"

// clampConns bounds the connection count by RLIMIT_NOFILE: each in-process
// connection costs two descriptors (client end + accepted server end),
// plus slack for listeners, pollers, pipes, and the runtime's own files.
func clampConns(requested int) int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return requested
	}
	usable := (int(rl.Cur) - 256) / 2
	if usable < 1 {
		usable = 1
	}
	if requested > usable {
		return usable
	}
	return requested
}
