// Command benchjson turns `go test -bench` output into the repo's scheduler
// perf-trajectory file. It reads benchmark result lines from stdin, parses
// the standard columns (ns/op, B/op, allocs/op) plus any custom ReportMetric
// columns, and writes a JSON document.
//
// Two modes:
//
//	benchjson -capture > bench/baseline.json
//	    record the parsed results alone (used once, before a hot-path
//	    change, to pin the comparison point)
//
//	benchjson -baseline bench/baseline.json -out BENCH_sched.json
//	    merge the parsed results with the recorded baseline and compute
//	    per-benchmark speedups (baseline ns/op ÷ current ns/op)
//
// Benchmark names are normalized by stripping the trailing -<procs> suffix
// so the keys stay stable across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	N        int64              `json:"n"`
	NsPerOp  float64            `json:"ns_per_op"`
	BPerOp   float64            `json:"b_per_op,omitempty"`
	AllocsOp float64            `json:"allocs_per_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// File is the document layout of BENCH_sched.json: the pinned baseline, the
// current run, and the headline ratios the acceptance gates read.
type File struct {
	Baseline map[string]Result  `json:"baseline,omitempty"`
	Current  map[string]Result  `json:"current"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
	// AllocReduction maps benchmark name to baseline allocs/op minus
	// current allocs/op (positive = fewer allocations now).
	AllocReduction map[string]float64 `json:"alloc_reduction,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{N: n}
		fields := strings.Fields(m[3])
		// Measurement columns come in (value, unit) pairs.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[fields[i+1]] = v
			}
		}
		out[m[1]] = res
	}
	return out, r.Err()
}

func main() {
	capture := flag.Bool("capture", false, "emit parsed results alone (baseline capture)")
	baselinePath := flag.String("baseline", "", "baseline JSON to merge and compare against")
	outPath := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	current, err := parse(sc)
	if err != nil {
		fail(err)
	}
	if len(current) == 0 {
		fail(fmt.Errorf("no benchmark result lines found on stdin"))
	}

	var doc any
	if *capture {
		doc = current
	} else {
		f := File{Current: current}
		if *baselinePath != "" {
			raw, err := os.ReadFile(*baselinePath)
			if err != nil {
				fail(err)
			}
			if err := json.Unmarshal(raw, &f.Baseline); err != nil {
				fail(fmt.Errorf("%s: %w", *baselinePath, err))
			}
			f.Speedup = make(map[string]float64)
			f.AllocReduction = make(map[string]float64)
			for name, base := range f.Baseline {
				cur, ok := current[name]
				if !ok || cur.NsPerOp <= 0 {
					continue
				}
				f.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
				f.AllocReduction[name] = base.AllocsOp - cur.AllocsOp
			}
		}
		doc = f
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fail(err)
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
