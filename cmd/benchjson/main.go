// Command benchjson turns `go test -bench` output into the repo's scheduler
// perf-trajectory file. It reads benchmark result lines from stdin, parses
// the standard columns (ns/op, B/op, allocs/op) plus any custom ReportMetric
// columns, and writes a JSON document.
//
// Two modes:
//
//	benchjson -capture > bench/baseline.json
//	    record the parsed results alone (used once, before a hot-path
//	    change, to pin the comparison point)
//
//	benchjson -baseline bench/baseline.json -out BENCH_sched.json
//	    merge the parsed results with the recorded baseline and compute
//	    per-benchmark speedups (baseline ns/op ÷ current ns/op)
//
// With -gate the compare mode also FAILS (exit 1) instead of just
// reporting: a per-case delta table goes to stderr, and the run is rejected
// when a multi-producer Post case exceeds -max-mp-ratio times its _1P
// sibling (contention crept back in), or when any case shared with the
// baseline slows down past -max-regress (perf regression). The
// multi-producer ratio is computed within the current run, so it is
// machine-independent and safe to gate in CI; the baseline comparison only
// makes sense on the machine that pinned the baseline (disable it with
// -max-regress 0).
//
// Benchmark names are normalized by stripping the trailing -<procs> suffix
// so the keys stay stable across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	N        int64              `json:"n"`
	NsPerOp  float64            `json:"ns_per_op"`
	BPerOp   float64            `json:"b_per_op,omitempty"`
	AllocsOp float64            `json:"allocs_per_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// File is the document layout of BENCH_sched.json: the pinned baseline, the
// current run, and the headline ratios the acceptance gates read.
type File struct {
	Baseline map[string]Result  `json:"baseline,omitempty"`
	Current  map[string]Result  `json:"current"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
	// AllocReduction maps benchmark name to baseline allocs/op minus
	// current allocs/op (positive = fewer allocations now).
	AllocReduction map[string]float64 `json:"alloc_reduction,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse reads benchmark lines. When -count=N repeats a benchmark, the
// sample with the lowest ns/op wins: the minimum is the noise-robust
// statistic (interference from neighbors only ever slows a run down), so
// feeding -count=3 output in makes both pinning and gating stable on
// shared machines.
func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{N: n}
		fields := strings.Fields(m[3])
		// Measurement columns come in (value, unit) pairs.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[fields[i+1]] = v
			}
		}
		if prev, ok := out[m[1]]; ok && prev.NsPerOp > 0 &&
			(res.NsPerOp <= 0 || prev.NsPerOp <= res.NsPerOp) {
			continue
		}
		out[m[1]] = res
	}
	return out, r.Err()
}

// mpCase matches the multi-producer benchmark names: a _<n>P suffix with
// n > 1. Its _1P sibling (same prefix) is the contention-free anchor.
var mpCase = regexp.MustCompile(`^(.+_)(\d+)P$`)

// checkGates prints a per-case delta table to w and returns the gate
// violations. maxMP caps current _<n>P ns/op over the _1P sibling's;
// maxRegress caps current over baseline ns/op per shared case (0 disables
// the baseline comparison — for machines other than the one that pinned it).
func checkGates(w *os.File, current, baseline map[string]Result, maxMP, maxRegress float64) []string {
	var violations []string
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-34s %12s %12s %8s\n", "case", "baseline", "current", "delta")
	for _, name := range names {
		cur := current[name]
		base, hasBase := baseline[name]
		if hasBase && base.NsPerOp > 0 && cur.NsPerOp > 0 {
			ratio := cur.NsPerOp / base.NsPerOp
			fmt.Fprintf(w, "%-34s %10.1fns %10.1fns %+7.1f%%\n",
				name, base.NsPerOp, cur.NsPerOp, (ratio-1)*100)
			if maxRegress > 0 && ratio > maxRegress {
				violations = append(violations,
					fmt.Sprintf("%s regressed %.2fx over baseline (gate %.2fx)", name, ratio, maxRegress))
			}
		} else {
			fmt.Fprintf(w, "%-34s %12s %10.1fns %8s\n", name, "-", cur.NsPerOp, "-")
		}
	}
	if maxMP > 0 {
		for _, name := range names {
			m := mpCase.FindStringSubmatch(name)
			if m == nil || m[2] == "1" {
				continue
			}
			anchor, ok := current[m[1]+"1P"]
			if !ok || anchor.NsPerOp <= 0 || current[name].NsPerOp <= 0 {
				continue
			}
			ratio := current[name].NsPerOp / anchor.NsPerOp
			fmt.Fprintf(w, "multi-producer %s = %.2fx %s1P (gate %.2fx)\n", name, ratio, m[1], maxMP)
			if ratio > maxMP {
				violations = append(violations,
					fmt.Sprintf("%s is %.2fx its single-producer sibling (gate %.2fx): dispatch contention", name, ratio, maxMP))
			}
		}
	}
	return violations
}

func main() {
	capture := flag.Bool("capture", false, "emit parsed results alone (baseline capture)")
	baselinePath := flag.String("baseline", "", "baseline JSON to merge and compare against")
	outPath := flag.String("out", "", "output path (default stdout)")
	gate := flag.Bool("gate", false, "fail (exit 1) on gate violations; print per-case deltas to stderr")
	maxMP := flag.Float64("max-mp-ratio", 1.15, "gate: max current multi-producer ns/op over the _1P sibling (0 disables)")
	// The baseline comparison crosses runs, and on small shared machines
	// ping-pong style cases swing ±35% between runs of identical code even
	// with min-of-count filtering — so this gate is deliberately loose: it
	// catches collapses (the pre-shard 64-producer case was 9.3x), not
	// percent drift. The multi-producer ratio gate is the tight one
	// because both of its sides come from the same run.
	maxRegress := flag.Float64("max-regress", 1.5, "gate: max current over baseline ns/op per case (0 disables)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	current, err := parse(sc)
	if err != nil {
		fail(err)
	}
	if len(current) == 0 {
		fail(fmt.Errorf("no benchmark result lines found on stdin"))
	}

	var doc any
	if *capture {
		doc = current
	} else {
		f := File{Current: current}
		if *baselinePath != "" {
			raw, err := os.ReadFile(*baselinePath)
			if err != nil {
				fail(err)
			}
			if err := json.Unmarshal(raw, &f.Baseline); err != nil {
				fail(fmt.Errorf("%s: %w", *baselinePath, err))
			}
			f.Speedup = make(map[string]float64)
			f.AllocReduction = make(map[string]float64)
			for name, base := range f.Baseline {
				cur, ok := current[name]
				if !ok || cur.NsPerOp <= 0 {
					continue
				}
				f.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
				f.AllocReduction[name] = base.AllocsOp - cur.AllocsOp
			}
		}
		doc = f
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fail(err)
	}
	if *gate && !*capture {
		f := doc.(File)
		if violations := checkGates(os.Stderr, f.Current, f.Baseline, *maxMP, *maxRegress); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "benchjson: GATE FAILED:", v)
			}
			os.Exit(1)
		}
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
