// Command httpbench regenerates Figure 9 of the paper: throughput
// (responses/sec) of the HTTP encryption service versus the number of
// concurrency worker threads, for four series — Jetty, Pyjama, and each
// combined with per-request OpenMP parallelization.
//
// Example:
//
//	httpbench -workers 1,2,4,8,16 -users 100 -reqs 2
//
// With -overload it instead runs the QoS overload scenario: offered load
// far beyond worker capacity against a Pyjama server with and without
// admission control, reporting shed rate and success-latency percentiles.
//
//	httpbench -overload -overload-capacity 2 -overload-users 64
//
// With -chaos it runs the failure drill: worker goroutines are killed at a
// configurable rate under load, against a supervised and an unsupervised
// server, reporting completions, typed failures, client timeouts (the
// wedges), respawns, and watchdog stalls.
//
//	httpbench -chaos -chaos-rate 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/evaluation"
	"repro/internal/httpserver"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	var (
		workerList = flag.String("workers", "1,2,4,8,16", "comma-separated worker thread counts (x-axis)")
		users      = flag.Int("users", 100, "virtual users")
		reqs       = flag.Int("reqs", 2, "requests per user")
		kbytes     = flag.Int("kbytes", 64, "encryption payload per request (KiB)")
		ompThreads = flag.Int("omp", 4, "team size for the +omp series")
		noOmp      = flag.Bool("no-omp-series", false, "skip the +omp series")
		latency    = flag.Bool("latency", false, "also print per-request p50/p99 latency")
		sched      = flag.Bool("sched", false, "also print the worker target's scheduler counters (submitted/completed/helped/rejected/peak)")

		overload   = flag.Bool("overload", false, "run the QoS overload scenario instead of the Figure 9 sweep")
		olCapacity = flag.Int("overload-capacity", 2, "worker threads for the overload scenario")
		olUsers    = flag.Int("overload-users", 64, "concurrent users offering load (should exceed capacity)")
		olReqs     = flag.Int("overload-reqs", 8, "requests per user")
		olTimeout  = flag.Duration("overload-timeout", 100*time.Millisecond, "per-request deadline for the qos series")
		olQueue    = flag.Int("overload-queue", 4, "qos wait-queue bound (requests)")
		olCoDel    = flag.Duration("overload-codel", 0, "CoDel sojourn target for the qos series (0 = queue-deadline policy)")

		chaosRun   = flag.Bool("chaos", false, "run the failure drill instead of the Figure 9 sweep")
		chCapacity = flag.Int("chaos-capacity", 4, "worker threads for the failure drill")
		chUsers    = flag.Int("chaos-users", 8, "concurrent users during the drill")
		chReqs     = flag.Int("chaos-reqs", 50, "requests per user")
		chRate     = flag.Float64("chaos-rate", 0.1, "probability a task kills its worker")
		chKills    = flag.Int("chaos-kills", 20, "cap on injected kills per series")
		chTimeout  = flag.Duration("chaos-timeout", 2*time.Second, "client timeout (bounds each wedged request)")

		traceOut = flag.String("trace", "", "capture causal spans and write a Chrome/Perfetto trace-event JSON file here")
	)
	flag.Parse()

	if *traceOut != "" {
		// The span ring sits under the servers' own metrics sinks (they
		// chain to it), so one capture spans every series of the run.
		buf := trace.NewBuffer(1 << 18)
		trace.SetGlobal(buf)
		defer writeTrace(*traceOut, buf)
	}

	if *overload {
		runOverload(*olCapacity, *olUsers, *olReqs, *kbytes*1024, *olQueue, *olTimeout, *olCoDel)
		return
	}
	if *chaosRun {
		runChaos(*chCapacity, *chUsers, *chReqs, *kbytes*1024, *chRate, *chKills, *chTimeout)
		return
	}

	workers, err := parseInts(*workerList)
	if err != nil {
		fail(err)
	}
	kernelBytes := *kbytes * 1024

	type series struct {
		mode httpserver.Mode
		omp  int
	}
	sweep := []series{{httpserver.Jetty, 1}, {httpserver.Pyjama, 1}}
	if !*noOmp {
		sweep = append(sweep, series{httpserver.Jetty, *ompThreads}, series{httpserver.Pyjama, *ompThreads})
	}

	fmt.Printf("httpbench: Evaluation B (Figure 9) — throughput (responses/sec) vs worker threads\n")
	fmt.Printf("users=%d  requests/user=%d  payload=%dKiB  omp=%d\n\n", *users, *reqs, *kbytes, *ompThreads)
	fmt.Printf("%-16s", "series \\ workers")
	for _, w := range workers {
		fmt.Printf("%10d", w)
	}
	fmt.Println()
	for _, s := range sweep {
		results, err := evaluation.Figure9Series(s.mode, s.omp, workers, kernelBytes, *users, *reqs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-16s", results[0].Label())
		for _, r := range results {
			fmt.Printf("%10.2f", r.Throughput)
		}
		fmt.Println()
		if *latency {
			fmt.Printf("%-16s", "  p50/p99 (ms)")
			for _, r := range results {
				fmt.Printf(" %4.0f/%4.0f", msOf(r.Latency.P50), msOf(r.Latency.P99))
			}
			fmt.Println()
		}
		if *sched {
			// The same counters bench/ reports, from the widest sweep point:
			// how much work the dispatch path moved and how deep it queued.
			st := results[len(results)-1].Sched
			if st.Submitted > 0 {
				fmt.Printf("%-16s submitted=%d completed=%d helped=%d steals=%d rejected=%d peak=%d\n",
					"  sched", st.Submitted, st.Completed, st.Helped, st.Steals, st.Rejected, st.QueuePeak)
			}
		}
	}
}

// runOverload offers users×reqs requests from users concurrent clients to
// a Pyjama server of capacity workers — an offered load far beyond
// capacity — once without QoS (the seed's unbounded queue) and once with
// admission control, and reports throughput, shed rate, and the latency
// distribution of successful responses for each.
func runOverload(capacity, users, reqs, kernelBytes, queueLimit int, timeout, codel time.Duration) {
	qosCfg := &httpserver.QoSConfig{
		QueueLimit:     queueLimit,
		RequestTimeout: timeout,
		CoDelTarget:    codel,
	}
	fmt.Printf("httpbench: overload scenario — %d users × %d reqs against %d workers (payload %dKiB)\n",
		users, reqs, capacity, kernelBytes/1024)
	fmt.Printf("qos: queue=%d timeout=%v policy=%s\n\n", queueLimit, timeout, qosCfg)
	fmt.Printf("%-14s %8s %8s %8s %9s %10s %10s %10s\n",
		"series", "ok", "shed", "errors", "shedrate", "resp/sec", "p50(ms)", "p99(ms)")
	for _, run := range []struct {
		label string
		qos   *httpserver.QoSConfig
	}{
		{"pyjama", nil},
		{"pyjama+qos", qosCfg},
	} {
		srv := httpserver.New(httpserver.Config{
			Mode: httpserver.Pyjama, Workers: capacity, KernelBytes: kernelBytes, QoS: run.qos,
		})
		base, err := srv.Start()
		if err != nil {
			fail(err)
		}
		lat := metrics.NewHistogram()
		var mu sync.Mutex
		var ok, shed, errs int64
		meter := metrics.NewThroughputMeter()
		meter.Start()
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := httpserver.NewClient(base)
				for i := 0; i < reqs; i++ {
					start := time.Now()
					_, status, err := c.Do(0)
					d := time.Since(start)
					mu.Lock()
					switch {
					case err == nil:
						ok++
						lat.Observe(d)
						meter.Add(1)
					case status == 503:
						shed++
					default:
						errs++
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		meter.Stop()
		srv.Stop()
		total := float64(ok + shed + errs)
		fmt.Printf("%-14s %8d %8d %8d %8.1f%% %10.1f %10.1f %10.1f\n",
			run.label, ok, shed, errs, 100*float64(shed)/total, meter.PerSecond(),
			msOf(lat.Quantile(0.5)), msOf(lat.Quantile(0.99)))
	}
	fmt.Printf("\nWithout qos every request queues (p99 grows with offered load); with qos\n")
	fmt.Printf("overflow is shed as 503s and the p99 of admitted requests stays bounded.\n")
}

// runChaos is the failure drill: the same worker-kill schedule (seeded via
// CHAOS_SEED, default 1337) is injected into an unsupervised and a
// supervised Pyjama server under identical load. The unsupervised series
// loses workers for good — once the pool is empty every request wedges
// until the client timeout, and only the stall watchdog notices; the
// supervised series respawns killed workers within its restart budget and
// keeps answering.
func runChaos(capacity, users, reqs, kernelBytes int, rate float64, kills int, timeout time.Duration) {
	seed := chaos.SeedFromEnv(1337)
	fmt.Printf("httpbench: failure drill — kill rate %.0f%% (max %d) against %d workers, %d users × %d reqs, seed %d\n\n",
		100*rate, kills, capacity, users, reqs, seed)
	fmt.Printf("%-18s %8s %8s %8s %9s %8s %9s %8s %10s\n",
		"series", "ok", "shed", "errors", "timeouts", "kills", "respawns", "stalls", "healthz")
	for _, run := range []struct {
		label   string
		restart bool
	}{
		{"pyjama", false},
		{"pyjama+supervise", true},
	} {
		inj := chaos.New(seed, chaos.Rule{Action: chaos.Kill, Rate: rate, Count: kills})
		srv := httpserver.New(httpserver.Config{
			Mode: httpserver.Pyjama, Workers: capacity, KernelBytes: kernelBytes,
			Chaos: inj,
			Supervise: &httpserver.SuperviseConfig{
				Restart:          run.restart,
				RespawnWorkers:   true,
				MaxRestarts:      2 * kills,
				Window:           time.Second,
				BackoffInitial:   time.Millisecond,
				BackoffMax:       10 * time.Millisecond,
				WatchdogInterval: 20 * time.Millisecond,
				StallAfter:       200 * time.Millisecond,
			},
		})
		base, err := srv.Start()
		if err != nil {
			fail(err)
		}
		var mu sync.Mutex
		var ok, shed, errs, timeouts int64
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := httpserver.NewClientTimeout(base, timeout)
				for i := 0; i < reqs; i++ {
					_, status, err := c.Do(0)
					mu.Lock()
					switch {
					case err == nil:
						ok++
					case status == 503:
						shed++
					case status != 0:
						errs++
					default:
						timeouts++ // transport failure: the wedge
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		health, _, herr := httpserver.NewClientTimeout(base, time.Second).Healthz()
		if herr != nil {
			health = "unreachable"
		}
		var respawns int64
		if s := srv.Supervisor(); s != nil {
			respawns = s.Stats().Respawns.Value() + s.Stats().Restarts.Value()
		}
		stalls := srv.Watchdog().Stalls()
		srv.Stop()
		fmt.Printf("%-18s %8d %8d %8d %9d %8d %9d %8d %10s\n",
			run.label, ok, shed, errs, timeouts, inj.Injected(chaos.Kill), respawns, stalls, health)
	}
	fmt.Printf("\nUnsupervised, killed workers stay dead: the pool drains to zero, requests\n")
	fmt.Printf("wedge until the client gives up, and the watchdog reports the stall. With\n")
	fmt.Printf("supervision each death is repaired within the restart budget and the same\n")
	fmt.Printf("schedule ends with the drill served and /healthz back to ok.\n")
}

// writeTrace exports the captured span ring as trace-event JSON (open at
// https://ui.perfetto.dev) and prints a one-line capture summary to stderr.
func writeTrace(path string, buf *trace.Buffer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "httpbench: trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := trace.ExportTraceEventBuffer(f, buf); err != nil {
		fmt.Fprintf(os.Stderr, "httpbench: trace export: %v\n", err)
		return
	}
	tree := trace.BuildTree(buf.Snapshot())
	fmt.Fprintf(os.Stderr, "httpbench: wrote %d events (%d spans, depth %d, %d overwritten) to %s — open at https://ui.perfetto.dev\n",
		buf.Len(), len(tree.ByID), tree.Depth(), buf.Overwritten(), path)
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "httpbench: %v\n", err)
	os.Exit(1)
}
