// Command httpbench regenerates Figure 9 of the paper: throughput
// (responses/sec) of the HTTP encryption service versus the number of
// concurrency worker threads, for four series — Jetty, Pyjama, and each
// combined with per-request OpenMP parallelization.
//
// Example:
//
//	httpbench -workers 1,2,4,8,16 -users 100 -reqs 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/evaluation"
	"repro/internal/httpserver"
)

func main() {
	var (
		workerList = flag.String("workers", "1,2,4,8,16", "comma-separated worker thread counts (x-axis)")
		users      = flag.Int("users", 100, "virtual users")
		reqs       = flag.Int("reqs", 2, "requests per user")
		kbytes     = flag.Int("kbytes", 64, "encryption payload per request (KiB)")
		ompThreads = flag.Int("omp", 4, "team size for the +omp series")
		noOmp      = flag.Bool("no-omp-series", false, "skip the +omp series")
		latency    = flag.Bool("latency", false, "also print per-request p50/p99 latency")
	)
	flag.Parse()

	workers, err := parseInts(*workerList)
	if err != nil {
		fail(err)
	}
	kernelBytes := *kbytes * 1024

	type series struct {
		mode httpserver.Mode
		omp  int
	}
	sweep := []series{{httpserver.Jetty, 1}, {httpserver.Pyjama, 1}}
	if !*noOmp {
		sweep = append(sweep, series{httpserver.Jetty, *ompThreads}, series{httpserver.Pyjama, *ompThreads})
	}

	fmt.Printf("httpbench: Evaluation B (Figure 9) — throughput (responses/sec) vs worker threads\n")
	fmt.Printf("users=%d  requests/user=%d  payload=%dKiB  omp=%d\n\n", *users, *reqs, *kbytes, *ompThreads)
	fmt.Printf("%-16s", "series \\ workers")
	for _, w := range workers {
		fmt.Printf("%10d", w)
	}
	fmt.Println()
	for _, s := range sweep {
		results, err := evaluation.Figure9Series(s.mode, s.omp, workers, kernelBytes, *users, *reqs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-16s", results[0].Label())
		for _, r := range results {
			fmt.Printf("%10.2f", r.Throughput)
		}
		fmt.Println()
		if *latency {
			fmt.Printf("%-16s", "  p50/p99 (ms)")
			for _, r := range results {
				fmt.Printf(" %4.0f/%4.0f", msOf(r.Latency.P50), msOf(r.Latency.P99))
			}
			fmt.Println()
		}
	}
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "httpbench: %v\n", err)
	os.Exit(1)
}
