// Top-level benchmarks: one per table/figure of the paper's evaluation.
//
//	BenchmarkTableI_*   — cost of each scheduling-property mode (Table I)
//	BenchmarkTableII_*  — cost of the registration runtime functions (Table II)
//	BenchmarkFig7_*     — per-event end-to-end response, per kernel and
//	                      handler strategy (Figures 7-8; the full
//	                      load-sweep harness is cmd/edtbench)
//	BenchmarkFig9_*     — HTTP service throughput per organization
//	                      (Figure 9; the full sweep is cmd/httpbench)
//	BenchmarkAblation_* — design-choice ablations from DESIGN.md §7
package repro

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evaluation"
	"repro/internal/eventloop"
	"repro/internal/gid"
	"repro/internal/gui"
	"repro/internal/httpserver"
	"repro/internal/kernels"
	"repro/internal/workload"
)

// --- Table I: scheduling-property modes -------------------------------------

func benchMode(b *testing.B, mode core.Mode, tag string) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	if _, err := rt.CreateWorker("worker", 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tag != "" {
			rt.InvokeNamed("worker", tag, func() {})
		} else {
			rt.Invoke("worker", mode, func() {})
		}
	}
	b.StopTimer()
	if tag != "" {
		rt.WaitTag(tag)
	}
}

func BenchmarkTableI_Default(b *testing.B) { benchMode(b, core.Wait, "") }
func BenchmarkTableI_Nowait(b *testing.B)  { benchMode(b, core.Nowait, "") }
func BenchmarkTableI_NameAs(b *testing.B)  { benchMode(b, core.NameAs, "t") }
func BenchmarkTableI_Await(b *testing.B)   { benchMode(b, core.Await, "") }

// --- Table II: registration functions ---------------------------------------

func BenchmarkTableII_CreateWorker(b *testing.B) {
	reg := &gid.Registry{}
	for i := 0; i < b.N; i++ {
		rt := core.NewRuntime(reg)
		if _, err := rt.CreateWorker("worker", 4); err != nil {
			b.Fatal(err)
		}
		rt.Shutdown()
	}
}

func BenchmarkTableII_RegisterEDT(b *testing.B) {
	reg := &gid.Registry{}
	loop := eventloop.New("edt", reg)
	loop.Start()
	defer loop.Stop()
	for i := 0; i < b.N; i++ {
		rt := core.NewRuntime(reg)
		if err := rt.RegisterEDT("edt", loop); err != nil {
			b.Fatal(err)
		}
		rt.Shutdown()
	}
}

// --- Figures 7-8: per-event response by kernel and approach -----------------

// benchFig7 measures one event's end-to-end handling (fire -> GUI updated
// after the kernel) for a given kernel family and handler strategy.
func benchFig7(b *testing.B, kernel string, approach evaluation.Approach) {
	reg := &gid.Registry{}
	tk := gui.NewToolkit(reg)
	defer tk.Dispose()
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	if err := rt.RegisterEDT("edt", tk.EDT()); err != nil {
		b.Fatal(err)
	}
	if _, err := rt.CreateWorker("worker", 3); err != nil {
		b.Fatal(err)
	}
	es := gui.NewFixedThreadPool(3, reg)
	defer es.Shutdown()

	factory := kernels.Factories()[kernel]
	size := kernels.TestSize(kernel)
	status := tk.NewLabel("status")
	runKernel := func(par bool) {
		k := factory(size)
		if par {
			k.RunPar(3)
		} else {
			k.RunSeq()
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fin := make(chan struct{})
		finish := func() { close(fin) }
		tk.EDT().Post(func() {
			status.SetText("processing")
			switch approach {
			case evaluation.Sequential:
				runKernel(false)
				status.SetText("done")
				finish()
			case evaluation.SyncParallel:
				runKernel(true)
				status.SetText("done")
				finish()
			case evaluation.SwingWorker:
				w := gui.NewSwingWorker[int, int](tk)
				w.DoInBackground = func(func(...int)) int { runKernel(false); return 0 }
				w.Done = func(int) { status.SetText("done"); finish() }
				w.Execute()
			case evaluation.ExecutorService:
				es.Execute(func() {
					runKernel(false)
					tk.InvokeLater(func() { status.SetText("done"); finish() })
				})
			case evaluation.PyjamaAsync, evaluation.PyjamaAsyncParallel:
				par := approach == evaluation.PyjamaAsyncParallel
				rt.Invoke("worker", core.Nowait, func() {
					runKernel(par)
					rt.Invoke("edt", core.Wait, func() { status.SetText("done"); finish() })
				})
			}
		})
		<-fin
	}
}

func BenchmarkFig7_Crypt(b *testing.B) {
	for _, a := range evaluation.Approaches() {
		b.Run(string(a), func(b *testing.B) { benchFig7(b, "crypt", a) })
	}
}

func BenchmarkFig7_Series(b *testing.B) {
	for _, a := range evaluation.Approaches() {
		b.Run(string(a), func(b *testing.B) { benchFig7(b, "series", a) })
	}
}

func BenchmarkFig7_MonteCarlo(b *testing.B) {
	for _, a := range evaluation.Approaches() {
		b.Run(string(a), func(b *testing.B) { benchFig7(b, "montecarlo", a) })
	}
}

func BenchmarkFig7_RayTracer(b *testing.B) {
	for _, a := range evaluation.Approaches() {
		b.Run(string(a), func(b *testing.B) { benchFig7(b, "raytracer", a) })
	}
}

// --- Figure 9: HTTP throughput ----------------------------------------------

func benchFig9(b *testing.B, mode httpserver.Mode, omp int) {
	srv := httpserver.New(httpserver.Config{
		Mode: mode, Workers: 4, OMPThreads: omp, KernelBytes: 16 * 1024,
	})
	base, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	client := httpserver.NewClient(base)

	var failed atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.Encrypt(0); err != nil {
				failed.Add(1)
			}
		}
	})
	b.StopTimer()
	if failed.Load() > 0 {
		b.Fatalf("%d requests failed", failed.Load())
	}
	b.ReportMetric(workload.MeanRate(b.N, time.Since(start)), "responses/sec")
}

func BenchmarkFig9_Jetty(b *testing.B)     { benchFig9(b, httpserver.Jetty, 1) }
func BenchmarkFig9_Pyjama(b *testing.B)    { benchFig9(b, httpserver.Pyjama, 1) }
func BenchmarkFig9_JettyOMP(b *testing.B)  { benchFig9(b, httpserver.Jetty, 4) }
func BenchmarkFig9_PyjamaOMP(b *testing.B) { benchFig9(b, httpserver.Pyjama, 4) }

// --- Ablations (DESIGN.md §7) ------------------------------------------------

// BenchmarkAblation_AwaitHelpFirst measures the await logical barrier on a
// worker that has other queued work (help-first keeps the worker busy).
func BenchmarkAblation_AwaitHelpFirst(b *testing.B) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	rt.CreateWorker("worker", 1)
	rt.CreateWorker("aux", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, _ := rt.Invoke("worker", core.Nowait, func() {
			// The worker awaits aux while its own queue gets a task.
			rt.Invoke("aux", core.Await, func() {})
		})
		rt.Invoke("worker", core.Nowait, func() {})
		comp.Wait()
	}
}

// BenchmarkAblation_BlockingWait is the same structure with a plain Wait,
// for comparison with the help-first barrier above.
func BenchmarkAblation_BlockingWait(b *testing.B) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	rt.CreateWorker("worker", 1)
	rt.CreateWorker("aux", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, _ := rt.Invoke("worker", core.Nowait, func() {
			rt.Invoke("aux", core.Wait, func() {})
		})
		rt.Invoke("worker", core.Nowait, func() {})
		comp.Wait()
	}
}

// BenchmarkAblation_GidCurrent isolates the cost of goroutine-identity
// recovery, the substitution for Java's Thread.currentThread (DESIGN.md §4).
func BenchmarkAblation_GidCurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = gid.Current()
	}
}
