// Encryptservice: the Section V.B web service — an HTTP endpoint that
// encrypts data for web users, with the computation offloaded to a worker
// virtual target — plus a built-in load generator that reports throughput
// like Figure 9.
//
// Run with: go run ./examples/encryptservice [-workers 4] [-users 20]
// Add -serve to leave the server running for manual curls instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"

	"repro/internal/httpserver"
	"repro/internal/workload"
)

func main() {
	var (
		workers = flag.Int("workers", 4, "worker virtual target size")
		omp     = flag.Int("omp", 1, "per-request parallel team size (1 = sequential kernel)")
		kbytes  = flag.Int("kbytes", 64, "payload KiB per request")
		users   = flag.Int("users", 20, "virtual users for the load run")
		reqs    = flag.Int("reqs", 3, "requests per user")
		serve   = flag.Bool("serve", false, "serve until interrupted instead of running the load test")
	)
	flag.Parse()

	srv := httpserver.New(httpserver.Config{
		Mode:        httpserver.Pyjama,
		Workers:     *workers,
		OMPThreads:  *omp,
		KernelBytes: *kbytes * 1024,
	})
	base, err := srv.Start()
	if err != nil {
		panic(err)
	}
	defer srv.Stop()
	fmt.Printf("encryptservice: serving on %s (pyjama mode, %d workers)\n", base, *workers)
	fmt.Printf("try: curl '%s/encrypt?size=4096'\n", base)

	if *serve {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		return
	}

	client := httpserver.NewClient(base)
	var failed atomic.Int64
	vu := &workload.VirtualUsers{Users: *users, RequestsPerUser: *reqs}
	wall := vu.Run(func(u, r int) {
		if _, err := client.Encrypt(0); err != nil {
			failed.Add(1)
		}
	})
	fmt.Printf("served %d requests in %v — %.1f responses/sec (%d failed)\n",
		srv.Served(), wall.Round(1e6), workload.MeanRate(int(srv.Served()), wall), failed.Load())
}
