// Netservice: the event-driven model beyond GUIs — a libevent-style
// message server (the paper's "further work": more event-driven
// frameworks). One dispatch goroutine owns all connection state; message
// handlers offload word counting to a worker virtual target and hop back
// to the dispatch target to reply, so no locks guard the per-server
// statistics.
//
// Run with: go run ./examples/netservice
// (starts a server, drives it with a few clients, prints the tally)
package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gid"
	"repro/internal/netloop"
)

func main() {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()

	srv := netloop.New("dispatch", reg)
	defer srv.Stop()
	if err := rt.RegisterEDT("dispatch", srv.Loop()); err != nil {
		panic(err)
	}
	if _, err := rt.CreateWorker("worker", 4); err != nil {
		panic(err)
	}

	// Per-server state, touched only on the dispatch loop: no mutex.
	totalWords := 0

	srv.HandleFunc(func(c *netloop.Client, line string) {
		// //#omp target virtual(worker) nowait
		rt.Invoke("worker", core.Nowait, func() {
			words := len(strings.Fields(line)) // the "computation"
			// //#omp target virtual(dispatch)
			rt.Invoke("dispatch", core.Wait, func() {
				totalWords += words // safe: dispatch-confined
				c.Send(fmt.Sprintf("words=%d total=%d", words, totalWords))
			})
		})
	})

	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Println("netservice: listening on", addr)

	// Drive it with three concurrent clients.
	var wg sync.WaitGroup
	for u := 1; u <= 3; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for m := 1; m <= 3; m++ {
				fmt.Fprintf(conn, "hello from client %d message %d\n", u, m)
				if sc.Scan() {
					fmt.Printf("client %d <- %s\n", u, sc.Text())
				}
			}
		}(u)
	}
	wg.Wait()
	fmt.Printf("served %d messages from %d connections; total words counted: %d\n",
		srv.Messages(), srv.Accepted(), totalWords)
}
