// Devicesim: the contrast Section III.A draws between device targets and
// virtual targets, made measurable. The same byte-doubling computation runs
//
//  1. on a simulated accelerator via the standard `target device(0)` path —
//     allocate device buffers, map(to:), launch, map(from:) — paying the
//     modeled transfer costs; and
//  2. on a worker virtual target, which shares host memory, so the block
//     reads and writes the data in place with no mapping at all.
//
// Run with: go run ./examples/devicesim [-mb 16]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gid"
)

func main() {
	mb := flag.Int("mb", 16, "payload size in MiB")
	flag.Parse()
	n := *mb << 20

	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	if _, err := rt.CreateWorker("worker", 2); err != nil {
		panic(err)
	}
	dev := device.New(0, reg, device.Config{
		TransferLatency: 50 * time.Microsecond,
		BytesPerSecond:  4 << 30, // PCIe-ish
	})
	defer dev.Stop()
	// pjc translates `target device(0)` to the target name "device0".
	if err := rt.RegisterTarget(dev.Name(), dev.Queue()); err != nil {
		panic(err)
	}

	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	double := func(b []byte) {
		for i := range b {
			b[i] *= 2
		}
	}

	// 1. //#omp target device(0) map(tofrom: data)
	t0 := time.Now()
	err := dev.Target([]device.Map{{Name: "data", Host: data, To: true, From: true}},
		func(mem device.Mem) {
			b, _ := mem.Bytes("data")
			double(b)
		})
	if err != nil {
		panic(err)
	}
	devTime := time.Since(t0)
	st := dev.Stats()

	// Reset the payload for a fair second run.
	for i := range data {
		data[i] = byte(i)
	}

	// 2. //#omp target virtual(worker)
	t0 = time.Now()
	comp, err := rt.Invoke("worker", core.Wait, func() { double(data) })
	if err != nil || comp.Err() != nil {
		panic(fmt.Sprint(err, comp.Err()))
	}
	virtTime := time.Since(t0)

	fmt.Printf("payload: %d MiB\n\n", *mb)
	fmt.Printf("target device(0):  %10v  (moved %d MiB to + %d MiB from the device in %d transfers)\n",
		devTime.Round(time.Microsecond), st.BytesToDevice>>20, st.BytesFromDevice>>20, st.Transfers)
	fmt.Printf("target virtual:    %10v  (shared memory: zero mapping, zero copies)\n",
		virtTime.Round(time.Microsecond))
	fmt.Printf("\nmapping overhead:  %v (%.1fx)\n",
		(devTime - virtTime).Round(time.Microsecond), float64(devTime)/float64(virtTime))
	fmt.Println("\nthis is why the extension's virtual targets suit event handlers:")
	fmt.Println("offloading host-side work should not pay an accelerator's data tax.")
}
