// Annotated: the OpenMP philosophy, demonstrated. This program carries
// //#omp directives but builds and runs UNCHANGED with the ordinary Go
// toolchain — the directives are comments, and the program executes its
// original sequential semantics:
//
//	go run ./examples/annotated
//
// Compile it with pjc and the very same logic becomes asynchronous and
// parallel, without a single line restructured:
//
//	go run ./cmd/pjc -o /tmp/annotated_pj.go examples/annotated/main.go
//	mkdir -p examples/.annotated_pj && cp /tmp/annotated_pj.go examples/.annotated_pj/main.go
//	go run ./examples/.annotated_pj
//
// (The output reports whether execution was sequential or concurrent.)
package main

import (
	"fmt"
	"time"

	"repro/internal/kernels"
	"repro/internal/pyjama"
)

// checksums collects per-task results; index-addressed, so both sequential
// and parallel runs fill it without synchronization.
var checksums [4]int64

func renderFrame(i int) {
	r := kernels.NewRayTracer(48)
	r.RunSeq()
	checksums[i] = r.Checksum()
}

func main() {
	// Table II initialization — harmless when directives are ignored (the
	// worker target simply sits idle).
	if _, err := pyjama.CreateWorker("worker", 4); err != nil {
		panic(err)
	}
	defer pyjama.Runtime().Shutdown()

	start := time.Now()

	// Four independent renders, tagged into one group.
	for i := 0; i < len(checksums); i++ {
		i := i
		//#omp target virtual(worker) name_as(frames) firstprivate(i)
		{
			renderFrame(i)
		}
	}
	//#omp wait(frames)

	// A parallel sum over the results.
	total := int64(0)
	//#omp parallel num_threads(2)
	{
		//#omp critical(total)
		{
			partial := int64(0)
			for _, c := range checksums {
				partial += c
			}
			if total == 0 {
				total = partial
			}
		}
	}

	elapsed := time.Since(start)
	for i, c := range checksums {
		fmt.Printf("frame %d checksum %d\n", i, c)
	}
	fmt.Printf("total %d in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Println("(run through pjc to execute the same logic concurrently)")
}
