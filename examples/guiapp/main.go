// Guiapp: a miniature of Evaluation A — a simulated Swing application under
// event load, with the handler strategy selectable on the command line, so
// the responsiveness difference between the approaches can be seen
// directly: the EDT occupancy column is what a user perceives as a frozen
// UI.
//
// Run with: go run ./examples/guiapp [-kernel montecarlo] [-rate 50]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/evaluation"
	"repro/internal/kernels"
)

func main() {
	var (
		kernel  = flag.String("kernel", "montecarlo", "kernel family: "+strings.Join(kernels.Names(), "|"))
		rate    = flag.Float64("rate", 50, "events per second")
		events  = flag.Int("events", 25, "events to fire")
		handler = flag.Duration("handler", 8*time.Millisecond, "target kernel duration")
	)
	flag.Parse()

	factory, ok := kernels.Factories()[*kernel]
	if !ok {
		fmt.Println("unknown kernel", *kernel)
		return
	}
	size := kernels.Calibrate(factory, kernels.TestSize(*kernel), *handler)
	fmt.Printf("guiapp: kernel=%s size=%d rate=%.0f/s events=%d\n\n", *kernel, size, *rate, *events)
	fmt.Printf("%-24s %14s %14s %14s %14s %12s\n",
		"approach", "mean response", "p90 response", "EDT occupancy", "probe p90", "GUI updates")

	for _, a := range evaluation.Approaches() {
		res, err := evaluation.RunEvalA(evaluation.EvalAConfig{
			Kernel: *kernel, KernelSize: size, Approach: a,
			Rate: *rate, Events: *events, ProbeRate: 100,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %14v %14v %14v %14v %12d\n",
			a,
			res.Response.Mean.Round(time.Microsecond),
			res.Response.P90.Round(time.Microsecond),
			res.Occupancy.Mean.Round(time.Microsecond),
			res.Probe.P90.Round(time.Microsecond),
			res.GUIUpdates)
	}
	fmt.Println("\nsequential/sync-parallel tie up the EDT for the whole kernel;")
	fmt.Println("the offloading approaches keep EDT occupancy (and probe latency,")
	fmt.Println("the responsiveness a user perceives) near zero.")
}
