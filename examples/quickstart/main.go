// Quickstart: the Figure 6 pattern on the public API.
//
// An event handler runs on the EDT, offloads its slow work to a worker
// virtual target with nowait, and the offloaded block hops back to the EDT
// for the GUI updates — no code restructuring, the continuation order reads
// top to bottom exactly like the sequential version.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/pyjama"
)

func main() {
	// Initialization, as in the paper's Table II: register the EDT and
	// create a worker target (done in a GUI constructor in real apps).
	edt, err := pyjama.RegisterEDT("edt")
	if err != nil {
		panic(err)
	}
	if _, err := pyjama.CreateWorker("worker", 4); err != nil {
		panic(err)
	}

	finished := make(chan struct{})

	// The button's callback, dispatched by the EDT.
	buttonOnClick := func() {
		fmt.Println("[edt]    Started EDT handling")

		// //#omp target virtual(worker) nowait
		pyjama.TargetBlock("worker", pyjama.Nowait, "", func() {
			fmt.Println("[worker] downloading and computing...")
			time.Sleep(50 * time.Millisecond) // networkDownload + formatConvert

			// //#omp target virtual(edt)
			pyjama.TargetBlock("edt", pyjama.Wait, "", func() {
				fmt.Println("[edt]    displayImg(img)")
			})
			pyjama.TargetBlock("edt", pyjama.Wait, "", func() {
				fmt.Println("[edt]    Finished!")
				close(finished)
			})
		})

		fmt.Println("[edt]    handler returned — EDT free for the next event")
	}

	// Fire the click; the EDT dispatches it.
	edt.Post(buttonOnClick)

	// While the worker runs, the EDT keeps handling other events.
	for i := 1; i <= 3; i++ {
		i := i
		edt.Post(func() { fmt.Printf("[edt]    other event %d handled\n", i) })
		time.Sleep(10 * time.Millisecond)
	}

	<-finished
	edt.Stop()
	pyjama.Runtime().Shutdown()
}
