// Imagepipeline: the paper's Figure 2 scenario end to end — a
// time-consuming computation with background stages (S1, S3), a foreground
// progress update between them (S2), and a concluding foreground update
// (S4) — written with the await mode, so the handler reads sequentially yet
// the EDT stays live the whole time.
//
// The "image processing" is a real kernel: each frame is rendered by the
// Java Grande raytracer port.
//
// Run with: go run ./examples/imagepipeline
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/pyjama"
)

func main() {
	edt, err := pyjama.RegisterEDT("edt")
	if err != nil {
		panic(err)
	}
	if _, err := pyjama.CreateWorker("worker", 4); err != nil {
		panic(err)
	}

	var heartbeat atomic.Int64
	stopTicker := make(chan struct{})
	// A ticker event posted to the EDT every 5ms: if the EDT were blocked
	// during the await, these would stall.
	go func() {
		for {
			select {
			case <-stopTicker:
				return
			case <-time.After(5 * time.Millisecond):
				edt.Post(func() { heartbeat.Add(1) })
			}
		}
	}()

	const frames = 3
	handlerDone := make(chan struct{})

	// The whole pipeline is ONE sequential-looking handler.
	processButtonClick := func() {
		fmt.Println("[edt]    start processing", frames, "frames")
		for f := 1; f <= frames; f++ {
			frame := f
			var checksum int64

			// //#omp target virtual(worker) await
			// S1+S3: render the frame in the background; the await logical
			// barrier keeps this EDT handler pumping other events.
			comp := pyjama.TargetBlock("worker", pyjama.Nowait, "", func() {
				r := kernels.NewRayTracer(48)
				r.RunPar(4) // asynchronous parallel: offloaded AND parallel
				checksum = r.Checksum()

				// S2: foreground progress update from within the stage.
				pyjama.TargetBlock("edt", pyjama.Wait, "", func() {
					fmt.Printf("[edt]    progress: frame %d/%d rendered\n", frame, frames)
				})
			})
			pyjama.AwaitCompletion(comp) // the handler continues only after the stage

			// S4: foreground conclusion — already on the EDT, so this
			// target block is inlined by thread-context awareness.
			pyjama.TargetBlock("edt", pyjama.Wait, "", func() {
				fmt.Printf("[edt]    frame %d checksum %d\n", frame, checksum)
			})
		}
		fmt.Printf("[edt]    pipeline finished; EDT heartbeats during handler: %d\n", heartbeat.Load())
		close(handlerDone)
	}

	edt.Post(processButtonClick)
	<-handlerDone
	close(stopTicker)

	if heartbeat.Load() == 0 {
		panic("EDT was blocked during the pipeline — await failed")
	}
	edt.Stop()
	pyjama.Runtime().Shutdown()
}
