// Package repro is a from-scratch Go reproduction of "Towards an
// Event-Driven Programming Model for OpenMP" (Fan, Sinnen, Giacaman, ICPP
// 2016): the Pyjama virtual-target runtime (internal/core, internal/pyjama),
// its source-to-source compiler (internal/transform, cmd/pjc), the OpenMP
// fork-join substrate (internal/omp), the simulated GUI/EDT framework
// (internal/eventloop, internal/gui), the Java Grande kernels
// (internal/kernels), and the evaluation harness that regenerates every
// figure and table of the paper (internal/evaluation, cmd/edtbench,
// cmd/httpbench, bench_test.go).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results.
package repro
